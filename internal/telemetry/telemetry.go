// Package telemetry is the process-wide observability substrate shared
// by the MapReduce engine, the RPC cluster and the registry server: a
// metrics registry of atomic counters, gauges and fixed-bucket
// histograms with Prometheus text-format exposition and an
// expvar-style snapshot API; hierarchical span tracing exportable as
// Chrome trace_event JSON (viewable in chrome://tracing or Perfetto);
// standard process gauges; and one-call net/http/pprof mounting.
//
// The package is dependency-free (standard library only) and built to
// stay off the hot path: every metric update is a single atomic
// operation, all metric methods are nil-receiver safe so call sites
// can hold nil handles when telemetry is off, and tracing costs one
// context lookup when no tracer is installed (the nil-sink fast path).
// Library code never enables telemetry on its own — a caller must pass
// a *Registry or install a *Tracer in the context.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. The zero value is ready
// to use; a nil *Counter silently drops updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta. Negative deltas are ignored —
// counters only go up.
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; a nil *Gauge silently drops updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (negative deltas decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the
// overflow. The zero value is not usable — histograms come from
// Registry.Histogram. A nil *Histogram silently drops observations.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations in one shot — the bulk
// path for feeding pre-aggregated data (e.g. latency.Tracker buckets)
// into the registry.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1
	// entries, the last being the +Inf overflow bucket. Counts are
	// per-bucket (not cumulative).
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// multiplying by factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency histogram shape: 100µs to
// ~100s in ×2.5 steps (values in seconds).
func DurationBuckets() []float64 { return ExpBuckets(100e-6, 2.5, 16) }

// kind discriminates series types inside the registry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric series (a name plus a label set).
// id is the rendered exposition key (seriesID), cached at creation so
// sampling visits re-use it instead of re-rendering; countID/sumID are
// the derived histogram sample keys, filled lazily on first visit.
type series struct {
	name    string
	labels  []Label
	kind    kind
	id      string
	countID string
	sumID   string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metric series and hands out get-or-create handles.
// Safe for concurrent use. A nil *Registry returns nil metric handles
// from every getter, so "telemetry off" call sites need no branches.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
	hooks  []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// OnScrape registers a hook run before every exposition or snapshot —
// the place to refresh sampled gauges (process stats, queue depths).
// Hooks must be fast and must not call OnScrape.
func (r *Registry) OnScrape(f func(*Registry)) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// runHooks executes scrape hooks outside the registry lock.
func (r *Registry) runHooks() {
	r.mu.RLock()
	hooks := make([]func(*Registry), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.RUnlock()
	for _, f := range hooks {
		f(r)
	}
}

// seriesID renders the canonical map key for a name + label set.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// lookup returns the series for id, creating it with mk when absent.
// Registering the same name with a different kind panics: that is a
// programming error, not an operational condition.
func (r *Registry) lookup(name string, labels []Label, k kind, mk func() *series) *series {
	id := seriesID(name, sortedLabels(labels))
	r.mu.RLock()
	s, ok := r.series[id]
	r.mu.RUnlock()
	if ok {
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", id, s.kind, k))
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[id]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", id, s.kind, k))
		}
		return s
	}
	s = mk()
	s.id = id
	r.series[id] = s
	return s
}

// sortedLabels returns labels ordered by key for a canonical series ID.
func sortedLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns the counter series for name + labels, creating it on
// first use. Nil registries return nil (a no-op counter).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	ls := sortedLabels(labels)
	s := r.lookup(name, ls, kindCounter, func() *series {
		return &series{name: name, labels: ls, kind: kindCounter, counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the gauge series for name + labels, creating it on
// first use. Nil registries return nil (a no-op gauge).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	ls := sortedLabels(labels)
	s := r.lookup(name, ls, kindGauge, func() *series {
		return &series{name: name, labels: ls, kind: kindGauge, gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns the histogram series for name + labels, creating
// it with the given bucket bounds on first use (later calls reuse the
// first bounds). Nil registries return nil (a no-op histogram).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	ls := sortedLabels(labels)
	s := r.lookup(name, ls, kindHistogram, func() *series {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		return &series{name: name, labels: ls, kind: kindHistogram,
			countID: seriesID(name+"_count", ls),
			sumID:   seriesID(name+"_sum", ls),
			hist: &Histogram{
				bounds:  bs,
				buckets: make([]atomic.Int64, len(bs)+1),
			}}
	})
	return s.hist
}

// Snapshot is the expvar-style dump of a registry: every series keyed
// by its rendered name (labels included).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// VisitSamples runs the scrape hooks and then calls f once per scalar
// sample: counters and gauges with their rendered series id and value,
// histograms as two derived samples (<name>_count and <name>_sum, the
// pair windowed-rate math needs). All ids are cached at series creation,
// so steady-state visits allocate nothing — this is the time-series
// sampler's zero-allocation scrape path. f must not call back into the
// registry's registration methods.
func (r *Registry) VisitSamples(f func(id string, v float64)) {
	if r == nil {
		return
	}
	r.runHooks()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.series {
		switch s.kind {
		case kindCounter:
			f(s.id, float64(s.counter.Value()))
		case kindGauge:
			f(s.id, s.gauge.Value())
		case kindHistogram:
			f(s.countID, float64(s.hist.count.Load()))
			f(s.sumID, math.Float64frombits(s.hist.sumBits.Load()))
		}
	}
}

// ParseSeriesID splits a rendered series id — exactly the keys
// WritePrometheus emits and ParsePrometheus returns — back into its
// metric name and label set, unescaping label values. The inverse of
// seriesID, so inject-relabel-rerender round-trips are exact.
func ParseSeriesID(id string) (name string, labels []Label, err error) {
	brace := strings.IndexByte(id, '{')
	if brace < 0 {
		return id, nil, nil
	}
	if !strings.HasSuffix(id, "}") {
		return "", nil, fmt.Errorf("telemetry: series %q: unterminated label set", id)
	}
	name = id[:brace]
	rest := id[brace+1 : len(id)-1]
	for len(rest) > 0 {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, fmt.Errorf("telemetry: series %q: malformed label pair", id)
		}
		key := rest[:eq]
		rest = rest[eq+2:]
		// Scan the quoted value respecting backslash escapes.
		var b strings.Builder
		i := 0
		closed := false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case 'n':
					b.WriteByte('\n')
				case '"':
					b.WriteByte('"')
				default:
					return "", nil, fmt.Errorf("telemetry: series %q: bad escape \\%c", id, rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return "", nil, fmt.Errorf("telemetry: series %q: unterminated label value", id)
		}
		labels = append(labels, Label{Key: key, Value: b.String()})
		rest = rest[i:]
		if len(rest) > 0 {
			if rest[0] != ',' {
				return "", nil, fmt.Errorf("telemetry: series %q: expected ',' between labels", id)
			}
			rest = rest[1:]
		}
	}
	return name, labels, nil
}

// RenderSeriesID is the public inverse of ParseSeriesID: the canonical
// exposition key for a name plus label set (labels sorted by key,
// values escaped).
func RenderSeriesID(name string, labels []Label) string {
	return seriesID(name, sortedLabels(labels))
}

// InjectLabel returns id with key="value" added to its label set,
// keeping labels in canonical sorted order. When the series already
// carries the key, the id is returned unchanged — federation must not
// overwrite a source's own identity labels (a master's per-worker
// series keep their original worker attribution).
func InjectLabel(id, key, value string) (string, error) {
	name, labels, err := ParseSeriesID(id)
	if err != nil {
		return "", err
	}
	for _, l := range labels {
		if l.Key == key {
			return id, nil
		}
	}
	return seriesID(name, sortedLabels(append(labels, Label{Key: key, Value: value}))), nil
}

// Snapshot runs the scrape hooks and copies every series.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.runHooks()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for id, s := range r.series {
		switch s.kind {
		case kindCounter:
			snap.Counters[id] = s.counter.Value()
		case kindGauge:
			snap.Gauges[id] = s.gauge.Value()
		case kindHistogram:
			snap.Histograms[id] = s.hist.Snapshot()
		}
	}
	return snap
}
