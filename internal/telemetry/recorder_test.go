package telemetry

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.EnsurePartitions(4)
	r.AddPartitionShuffle(0, 10, 100)
	r.SetPartitionInput(1, 5)
	r.SetLocalSkyline(0, 3)
	r.SetGlobalSurvivors(0, 2)
	r.SetGlobalSkyline(7)
	r.RecordTask(TaskRecord{Kind: "map"})
	r.SetRetryCounts(1, 2)
	r.Publish(NewRegistry())
	if rep := r.Report(); rep != nil {
		t.Errorf("nil recorder Report = %+v, want nil", rep)
	}
}

func TestRecorderOptimality(t *testing.T) {
	r := NewRecorder("test")
	r.EnsurePartitions(4)
	// p0: 4 local, 2 survive → 0.5. p1: 2 local, 2 survive → 1.0.
	// p2: empty local skyline → excluded from the mean. p3: untouched.
	r.SetLocalSkyline(0, 4)
	r.SetGlobalSurvivors(0, 2)
	r.SetLocalSkyline(1, 2)
	r.SetGlobalSurvivors(1, 2)
	r.SetGlobalSkyline(4)

	rep := r.Report()
	if len(rep.Partitions) != 4 {
		t.Fatalf("partitions = %d, want 4 (EnsurePartitions)", len(rep.Partitions))
	}
	for i, p := range rep.Partitions {
		if p.Partition != i {
			t.Errorf("partition[%d].Partition = %d, want sorted ids", i, p.Partition)
		}
	}
	if got := rep.Partitions[0].Optimality; got != 0.5 {
		t.Errorf("p0 optimality = %v, want 0.5", got)
	}
	if got := rep.Partitions[1].Optimality; got != 1.0 {
		t.Errorf("p1 optimality = %v, want 1.0", got)
	}
	if got := rep.Partitions[2].Optimality; got != 0 {
		t.Errorf("empty partition optimality = %v, want 0", got)
	}
	// Eq. (5): mean over non-empty partitions only.
	if got := rep.Optimality; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("job optimality = %v, want 0.75", got)
	}
	if rep.GlobalSkyline != 4 {
		t.Errorf("global skyline = %d, want 4", rep.GlobalSkyline)
	}
}

func TestRecorderSkew(t *testing.T) {
	r := NewRecorder("skew")
	for id, load := range []int64{1, 2, 3, 4} {
		r.AddPartitionShuffle(id, load, load*10)
	}
	rep := r.Report()
	if rep.Skew.MaxLoad != 4 {
		t.Errorf("max load = %d, want 4", rep.Skew.MaxLoad)
	}
	if math.Abs(rep.Skew.MeanLoad-2.5) > 1e-12 {
		t.Errorf("mean load = %v, want 2.5", rep.Skew.MeanLoad)
	}
	if math.Abs(rep.Skew.Imbalance-1.6) > 1e-12 {
		t.Errorf("imbalance = %v, want 1.6", rep.Skew.Imbalance)
	}
	// Gini of [1,2,3,4] via mean absolute difference:
	// ΣΣ|xi−xj| = 2·(1+2+3+1+2+1) = 20; G = 20/(2·16·2.5) = 0.25.
	if math.Abs(rep.Skew.Gini-0.25) > 1e-12 {
		t.Errorf("gini = %v, want 0.25", rep.Skew.Gini)
	}
	if rep.Partitions[3].ShuffleBytes != 40 {
		t.Errorf("p3 shuffle bytes = %d, want 40", rep.Partitions[3].ShuffleBytes)
	}
}

func TestRecorderSkewUniformAndEmpty(t *testing.T) {
	r := NewRecorder("uniform")
	for id := 0; id < 3; id++ {
		r.SetPartitionInput(id, 5)
	}
	rep := r.Report()
	if rep.Skew.Gini != 0 {
		t.Errorf("uniform gini = %v, want 0", rep.Skew.Gini)
	}
	if rep.Skew.Imbalance != 1 {
		t.Errorf("uniform imbalance = %v, want 1", rep.Skew.Imbalance)
	}
	if rep := NewRecorder("empty").Report(); rep.Skew != (Skew{}) {
		t.Errorf("empty skew = %+v, want zero", rep.Skew)
	}
}

// TestRecorderSkewFallback: with no input-record counts (the classic
// rpcmr transport), skew must be computed over local skyline sizes.
func TestRecorderSkewFallback(t *testing.T) {
	r := NewRecorder("fallback")
	r.SetLocalSkyline(0, 10)
	r.SetLocalSkyline(1, 30)
	rep := r.Report()
	if rep.Skew.MaxLoad != 30 {
		t.Errorf("fallback max load = %d, want 30 (local skyline)", rep.Skew.MaxLoad)
	}
	if math.Abs(rep.Skew.MeanLoad-20) > 1e-12 {
		t.Errorf("fallback mean load = %v, want 20", rep.Skew.MeanLoad)
	}
}

func TestRecorderTasksAndRetries(t *testing.T) {
	r := NewRecorder("tasks")
	r.RecordTask(TaskRecord{Job: "j", Kind: "map", Task: 0, Seconds: 0.1})
	r.RecordTask(TaskRecord{Job: "j", Kind: "map", Task: 1, Seconds: 2.5, Straggler: true})
	r.SetRetryCounts(3, 1)
	rep := r.Report()
	if len(rep.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(rep.Tasks))
	}
	if rep.Stragglers != 1 {
		t.Errorf("stragglers = %d, want 1", rep.Stragglers)
	}
	if rep.TaskRetries != 3 || rep.WorkerFailures != 1 {
		t.Errorf("retries/failures = %d/%d, want 3/1", rep.TaskRetries, rep.WorkerFailures)
	}
}

func TestRecorderPublish(t *testing.T) {
	r := NewRecorder("pub")
	r.SetPartitionInput(0, 10)
	r.SetPartitionInput(1, 30)
	r.SetLocalSkyline(0, 4)
	r.SetGlobalSurvivors(0, 1)
	reg := NewRegistry()
	r.Publish(reg)
	snap := reg.Snapshot()
	if snap.Gauges["skyline_load_max"] != 30 {
		t.Errorf("skyline_load_max = %v", snap.Gauges["skyline_load_max"])
	}
	if snap.Gauges["skyline_local_optimality"] != 0.25 {
		t.Errorf("skyline_local_optimality = %v", snap.Gauges["skyline_local_optimality"])
	}
	if snap.Gauges[`skyline_partition_optimality{partition="0"}`] != 0.25 {
		t.Errorf("per-partition gauge missing: %v", snap.Gauges)
	}
}

func TestMountFlightRecorder(t *testing.T) {
	var rec *Recorder
	mux := http.NewServeMux()
	MountFlightRecorder(mux, func() *Recorder { return rec })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// No recorder yet → 404.
	resp, err := http.Get(srv.URL + FlightRecorderPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status with nil recorder = %d, want 404", resp.StatusCode)
	}

	rec = NewRecorder("http-job")
	rec.EnsurePartitions(2)
	rec.SetLocalSkyline(0, 3)
	rec.SetGlobalSurvivors(0, 3)
	resp, err = http.Get(srv.URL + FlightRecorderPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("flight JSON does not decode: %v", err)
	}
	if rep.Job != "http-job" || len(rep.Partitions) != 2 {
		t.Errorf("decoded report = %+v", rep)
	}

	// POST is rejected.
	resp, err = http.Post(srv.URL+FlightRecorderPath, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

// TestTracerImport: importing a worker batch must remap IDs to fresh
// local ones, keep intra-batch parent links, attach batch roots under
// the given parent, and preserve tracks and attrs.
func TestTracerImport(t *testing.T) {
	master := NewTracer()
	// Local span occupies ID 1, so worker IDs would collide unremapped.
	_, s := StartSpan(WithTracer(context.Background(), master), "job")
	s.End()

	worker := []SpanData{
		{ID: 1, Parent: 0, Name: "map-task", Track: 3, Attrs: []Attr{A("task", 7)}},
		{ID: 2, Parent: 1, Name: "inner", Track: 3},
	}
	master.Import(s.ID(), worker)

	spans := master.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	ids := map[uint64]bool{}
	for _, sd := range spans {
		byName[sd.Name] = sd
		if ids[sd.ID] {
			t.Fatalf("duplicate span ID %d after import", sd.ID)
		}
		ids[sd.ID] = true
	}
	task := byName["map-task"]
	if task.Parent != s.ID() {
		t.Errorf("batch root parent = %d, want job span %d", task.Parent, s.ID())
	}
	if task.Track != 3 {
		t.Errorf("track not preserved: %d", task.Track)
	}
	if len(task.Attrs) != 1 || task.Attrs[0].Key != "task" {
		t.Errorf("attrs not preserved: %v", task.Attrs)
	}
	inner := byName["inner"]
	if inner.Parent != task.ID {
		t.Errorf("intra-batch parent link broken: inner.Parent = %d, task.ID = %d", inner.Parent, task.ID)
	}
}

func TestTracerImportEmptyAndNil(t *testing.T) {
	var nilT *Tracer
	nilT.Import(1, []SpanData{{ID: 1}}) // must not panic
	tr := NewTracer()
	tr.Import(1, nil)
	if n := len(tr.Spans()); n != 0 {
		t.Errorf("spans after empty import = %d", n)
	}
}
