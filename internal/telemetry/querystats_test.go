package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestQueryLogRing: the recent ring keeps the newest capacity records,
// newest first, and totals keep counting past evictions.
func TestQueryLogRing(t *testing.T) {
	l := NewQueryLog(16, 4, 0)
	for i := 0; i < 40; i++ {
		q := BeginQuery("skyline")
		q.AddCost(2, 10, 5)
		q.SetResult(i)
		l.Record(q)
	}
	recent := l.Recent(0)
	if len(recent) != 16 {
		t.Fatalf("recent len = %d, want 16 (capacity)", len(recent))
	}
	if recent[0].ID != 40 || recent[15].ID != 25 {
		t.Errorf("ring order wrong: newest id %d oldest id %d", recent[0].ID, recent[15].ID)
	}
	if got := l.Recent(3); len(got) != 3 || got[0].ID != 40 {
		t.Errorf("limited recent wrong: %+v", got)
	}
	tot := l.Totals()
	if tot.Queries != 40 || tot.DominanceTests != 40*5 || tot.CandidatesScanned != 40*10 {
		t.Errorf("totals = %+v, want 40 queries, 200 tests, 400 candidates", tot)
	}
}

// TestQueryLogSlow: the slow log retains the top-K by duration in
// descending order, and the threshold flags records.
func TestQueryLogSlow(t *testing.T) {
	l := NewQueryLog(16, 3, 10*time.Millisecond)
	durations := []time.Duration{5 * time.Millisecond, 50 * time.Millisecond,
		time.Millisecond, 30 * time.Millisecond, 20 * time.Millisecond}
	for i, d := range durations {
		q := BeginQuery("skyline")
		q.Start = time.Now().Add(-d) // synthesize the duration
		q.SetResult(i)
		l.Record(q)
	}
	slow := l.Slow()
	if len(slow) != 3 {
		t.Fatalf("slow len = %d, want 3 (K)", len(slow))
	}
	if !(slow[0].DurationSeconds >= slow[1].DurationSeconds &&
		slow[1].DurationSeconds >= slow[2].DurationSeconds) {
		t.Errorf("slow log not descending: %v %v %v",
			slow[0].DurationSeconds, slow[1].DurationSeconds, slow[2].DurationSeconds)
	}
	// The three slowest are 50ms, 30ms, 20ms — all above the threshold.
	for _, q := range slow {
		if !q.Slow {
			t.Errorf("record with %.3fs not flagged slow (threshold 10ms)", q.DurationSeconds)
		}
		if q.DurationSeconds < 0.015 {
			t.Errorf("slow log kept a fast query: %.4fs", q.DurationSeconds)
		}
	}
	if tot := l.Totals(); tot.SlowQueries != 3 {
		t.Errorf("slow totals = %d, want 3 (5ms and 1ms under threshold)", tot.SlowQueries)
	}
}

// TestQueryStatsNilSafe: nil records and logs drop everything without
// panicking, and the context plumbing round-trips.
func TestQueryStatsNilSafe(t *testing.T) {
	var q *QueryStats
	q.AddStage("merge", time.Millisecond)
	q.AddCost(1, 2, 3)
	q.SetPath("cached")
	q.SetResult(7)
	q.SetStatus(200)
	var l *QueryLog
	l.Record(BeginQuery("x"))
	if l.Recent(0) != nil || l.Slow() != nil || l.Totals() != (QueryTotals{}) {
		t.Error("nil log returned data")
	}
	if QueryStatsFrom(context.Background()) != nil {
		t.Error("empty context returned stats")
	}
	qs := BeginQuery("skyline")
	ctx := WithQueryStats(context.Background(), qs)
	if QueryStatsFrom(ctx) != qs {
		t.Error("context round-trip failed")
	}
}

// TestQueryLogEndpoints: /debug/queries and /debug/slowlog serve JSON
// with totals, honour ?limit, and 404 when the source returns nil.
func TestQueryLogEndpoints(t *testing.T) {
	l := NewQueryLog(16, 8, 0)
	for i := 0; i < 5; i++ {
		q := BeginQuery("skyline")
		q.AddStage("merge", time.Millisecond)
		q.AddCost(8, 100, 250)
		l.Record(q)
	}
	mux := http.NewServeMux()
	MountQueryLog(mux, func() *QueryLog { return l })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var doc struct {
		Totals  QueryTotals  `json:"totals"`
		Queries []QueryStats `json:"queries"`
	}
	get := func(path string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q", path, ct)
		}
		doc.Queries = nil
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("GET %s does not parse: %v", path, err)
		}
	}
	get(QueriesPath)
	if len(doc.Queries) != 5 || doc.Totals.Queries != 5 || doc.Totals.DominanceTests != 5*250 {
		t.Errorf("queries doc wrong: %d queries, totals %+v", len(doc.Queries), doc.Totals)
	}
	if doc.Queries[0].PartitionsProbed != 8 || len(doc.Queries[0].Stages) != 1 {
		t.Errorf("query record lost detail: %+v", doc.Queries[0])
	}
	get(QueriesPath + "?limit=2")
	if len(doc.Queries) != 2 {
		t.Errorf("limit ignored: %d queries", len(doc.Queries))
	}
	get(SlowLogPath)
	if len(doc.Queries) != 5 {
		t.Errorf("slowlog doc wrong: %d queries, want 5 (K=8 keeps all)", len(doc.Queries))
	}

	// Absent log → 404 (what older skytop/new skytop's n/a path sees).
	mux2 := http.NewServeMux()
	MountQueryLog(mux2, func() *QueryLog { return nil })
	srv2 := httptest.NewServer(mux2)
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + QueriesPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("nil source status = %d, want 404", resp.StatusCode)
	}
}
