package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// The event log is the cluster's structured operational journal: every
// load-bearing transition — job and phase boundaries, task dispatch,
// retries, stragglers, spills, worker state changes — lands here as one
// leveled, attributed event. Storage is a bounded ring of per-slot
// locked cells: writers claim a slot with one atomic increment and touch
// only that slot's mutex, so concurrent producers never serialize on a
// global lock and the log can sit on dispatch paths. Readers snapshot
// the ring without stopping writers. Like the rest of the package it is
// nil-safe: a nil *EventLog drops everything, so call sites hold a bare
// handle with no branches.

// LogEvent is one recorded event. Seq is a process-wide monotonically
// increasing sequence number — the cursor for incremental consumers
// (/debug/events?since=N returns only newer events).
type LogEvent struct {
	Seq   uint64         `json:"seq"`
	Time  time.Time      `json:"time"`
	Level string         `json:"level"` // "debug", "info", "warn", "error"
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// levelIndex buckets a slog level into the four counter slots.
func levelIndex(l slog.Level) int {
	switch {
	case l < slog.LevelInfo:
		return 0
	case l < slog.LevelWarn:
		return 1
	case l < slog.LevelError:
		return 2
	default:
		return 3
	}
}

var levelNames = [4]string{"debug", "info", "warn", "error"}

// ParseLevel maps a level name ("debug", "info", "warn"/"warning",
// "error", any case) to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown level %q", s)
}

// eventSlot is one ring cell. seq is 0 while the cell has never been
// written. The event is retained pre-rendered as its JSON line in a
// buffer recycled across ring wraps: a full ring is pointer-free bytes
// the garbage collector never traces, so a busy log does not inflate
// mark cost for the job computing next to it. Reads (rare) parse the
// line back; seq and level stay as fields so filters skip without
// parsing.
type eventSlot struct {
	mu    sync.Mutex
	seq   uint64
	level int8 // levelIndex of the recorded level
	line  []byte
}

// EventLog is a bounded, concurrency-friendly ring of structured events.
// All methods are safe for concurrent use and no-op on a nil receiver.
type EventLog struct {
	slots []eventSlot
	seq   atomic.Uint64
	min   atomic.Int64                // minimum recorded level (slog.Level)
	count [4]atomic.Int64             // per-level totals since start
	bridge atomic.Pointer[[4]*Counter] // per-level registry counters, when bound
}

// NewEventLog returns an event log retaining the most recent capacity
// events (minimum 16; 1024 is a sensible default for a long-lived
// process). The log records every level until SetLevel raises the bar.
func NewEventLog(capacity int) *EventLog {
	if capacity < 16 {
		capacity = 16
	}
	l := &EventLog{slots: make([]eventSlot, capacity)}
	l.min.Store(int64(slog.LevelDebug))
	return l
}

// SetLevel drops events below min at the write path.
func (l *EventLog) SetLevel(min slog.Level) {
	if l == nil {
		return
	}
	l.min.Store(int64(min))
}

// Enabled reports whether an event at level would be recorded — the
// cheap pre-check for hot call sites that build attribute lists.
func (l *EventLog) Enabled(level slog.Level) bool {
	return l != nil && int64(level) >= l.min.Load()
}

// BindMetrics bridges the per-level event totals into reg as
// events_total{level} counters. Counts accumulated before binding are
// replayed so the series never under-reports.
func (l *EventLog) BindMetrics(reg *Registry) {
	if l == nil || reg == nil {
		return
	}
	var cs [4]*Counter
	for i, name := range levelNames {
		cs[i] = reg.Counter("events_total", L("level", name))
		cs[i].Add(l.count[i].Load())
	}
	l.bridge.Store(&cs)
}

// Log records one event. Attrs are flattened into the event's attribute
// map on read; later keys win. The write claims a ring slot with one
// atomic increment and locks only that slot — the attr slice is retained
// as-is, with no per-event map build.
func (l *EventLog) Log(level slog.Level, msg string, attrs ...Attr) {
	if l == nil || int64(level) < l.min.Load() {
		return
	}
	l.log(level, msg, attrs)
}

func (l *EventLog) log(level slog.Level, msg string, attrs []Attr) {
	li := levelIndex(level)
	l.count[li].Add(1)
	if cs := l.bridge.Load(); cs != nil {
		cs[li].Inc()
	}
	now := time.Now()
	seq := l.seq.Add(1)
	slot := &l.slots[(seq-1)%uint64(len(l.slots))]
	slot.mu.Lock()
	slot.seq = seq
	slot.level = int8(li)
	slot.line = appendEventJSON(slot.line[:0], seq, now, levelNames[li], msg, attrs)
	slot.mu.Unlock()
}

// appendEventJSON renders one event as its JSON line (no trailing
// newline), matching the LogEvent encoding. Hand-rolled so the write
// path costs one buffer append instead of reflection and retained maps.
func appendEventJSON(b []byte, seq uint64, t time.Time, level, msg string, attrs []Attr) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"time":"`...)
	b = t.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, level...)
	b = append(b, `","msg":`...)
	b = appendJSONString(b, msg)
	if len(attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			b = appendJSONValue(b, a.Value)
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// appendJSONString appends s as a JSON string literal.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r == '\n':
			b = append(b, '\\', 'n')
		case r == '\t':
			b = append(b, '\\', 't')
		case r < 0x20:
			b = append(b, `\u00`...)
			const hex = "0123456789abcdef"
			b = append(b, hex[r>>4], hex[r&0xf])
		default:
			b = utf8.AppendRune(b, r)
		}
	}
	return append(b, '"')
}

// appendJSONValue appends an attribute value of any common scalar type;
// everything else is stringified.
func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return appendJSONString(b, strconv.FormatFloat(x, 'g', -1, 64))
		}
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case float32:
		return appendJSONValue(b, float64(x))
	case time.Duration:
		return appendJSONString(b, x.String())
	default:
		return appendJSONString(b, fmt.Sprint(v))
	}
}

// Debug, Info, Warn and Error are level shorthands for Log.
func (l *EventLog) Debug(msg string, attrs ...Attr) { l.Log(slog.LevelDebug, msg, attrs...) }
func (l *EventLog) Info(msg string, attrs ...Attr)  { l.Log(slog.LevelInfo, msg, attrs...) }
func (l *EventLog) Warn(msg string, attrs ...Attr)  { l.Log(slog.LevelWarn, msg, attrs...) }
func (l *EventLog) Error(msg string, attrs ...Attr) { l.Log(slog.LevelError, msg, attrs...) }

// LastSeq returns the sequence number of the most recently written event
// (0 when nothing has been logged) — the cursor for incremental reads.
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// LevelCounts returns the per-level totals since the log was created
// (dropped-by-ring events included — the counts are write-side).
func (l *EventLog) LevelCounts() map[string]int64 {
	out := make(map[string]int64, 4)
	if l == nil {
		return out
	}
	for i, name := range levelNames {
		out[name] = l.count[i].Load()
	}
	return out
}

// Events returns the retained events with Seq > since and level >= min,
// in sequence order. A wrapped ring returns only the surviving tail —
// consumers detect loss by a gap between their cursor and the first
// returned Seq.
func (l *EventLog) Events(since uint64, min slog.Level) []LogEvent {
	if l == nil {
		return nil
	}
	out := make([]LogEvent, 0, len(l.slots))
	for _, line := range l.lines(since, min) {
		var ev LogEvent
		if json.Unmarshal(line, &ev) == nil {
			out = append(out, ev)
		}
	}
	return out
}

// lines snapshots the retained, filter-matching JSON lines in sequence
// order. Each line is copied out under its slot lock so later writes
// cannot mutate the returned bytes.
func (l *EventLog) lines(since uint64, min slog.Level) [][]byte {
	type seqLine struct {
		seq  uint64
		line []byte
	}
	matched := make([]seqLine, 0, len(l.slots))
	minIdx := levelIndex(min)
	for i := range l.slots {
		s := &l.slots[i]
		s.mu.Lock()
		if s.seq > since && int(s.level) >= minIdx {
			matched = append(matched, seqLine{s.seq, append([]byte(nil), s.line...)})
		}
		s.mu.Unlock()
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].seq < matched[j].seq })
	out := make([][]byte, len(matched))
	for i, m := range matched {
		out[i] = m.line
	}
	return out
}

// WriteJSONLines writes the retained events matching the filters as one
// JSON object per line — the exposition and shutdown-flush format.
func (l *EventLog) WriteJSONLines(w io.Writer, since uint64, min slog.Level) error {
	if l == nil {
		return nil
	}
	for _, line := range l.lines(since, min) {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// log/slog integration

// Logger returns a *slog.Logger whose records land in the event log, so
// code written against the standard structured-logging API feeds the
// same ring as the direct Log calls.
func (l *EventLog) Logger() *slog.Logger {
	return slog.New(&slogHandler{log: l})
}

// slogHandler adapts EventLog to slog.Handler. WithAttrs pre-binds
// attributes; WithGroup prefixes subsequent keys ("group.key"), the flat
// rendering the JSON-lines exposition wants.
type slogHandler struct {
	log    *EventLog
	prefix string
	bound  []Attr
}

// Enabled implements slog.Handler.
func (h *slogHandler) Enabled(_ context.Context, level slog.Level) bool {
	return h.log != nil && int64(level) >= h.log.min.Load()
}

// Handle implements slog.Handler.
func (h *slogHandler) Handle(_ context.Context, r slog.Record) error {
	if h.log == nil {
		return nil
	}
	var attrs []Attr
	if len(h.bound) > 0 || r.NumAttrs() > 0 {
		attrs = make([]Attr, 0, len(h.bound)+r.NumAttrs())
		attrs = append(attrs, h.bound...)
		r.Attrs(func(a slog.Attr) bool {
			attrs = append(attrs, Attr{Key: h.prefix + a.Key, Value: a.Value.Resolve().Any()})
			return true
		})
	}
	h.log.log(r.Level, r.Message, attrs)
	return nil
}

// WithAttrs implements slog.Handler.
func (h *slogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &slogHandler{log: h.log, prefix: h.prefix, bound: append([]Attr(nil), h.bound...)}
	for _, a := range attrs {
		nh.bound = append(nh.bound, Attr{Key: h.prefix + a.Key, Value: a.Value.Resolve().Any()})
	}
	return nh
}

// WithGroup implements slog.Handler.
func (h *slogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &slogHandler{log: h.log, prefix: h.prefix + name + ".", bound: h.bound}
}

// ---------------------------------------------------------------------------
// Context plumbing

type eventLogKey struct{}

// WithEventLog installs log as the context's event destination.
func WithEventLog(ctx context.Context, log *EventLog) context.Context {
	return context.WithValue(ctx, eventLogKey{}, log)
}

// EventLogFrom returns the context's event log; nil when event logging
// is off (and a nil *EventLog is safe to use directly).
func EventLogFrom(ctx context.Context) *EventLog {
	log, _ := ctx.Value(eventLogKey{}).(*EventLog)
	return log
}

// ---------------------------------------------------------------------------
// HTTP exposition

// EventsPath is where MountEvents serves the log.
const EventsPath = "/debug/events"

// MountEvents serves the event log as JSON lines at /debug/events.
// Query parameters: ?level=info filters to that level and above,
// ?since=N returns only events with Seq > N (the incremental cursor),
// ?limit=N keeps only the most recent N matching events.
func MountEvents(mux *http.ServeMux, log *EventLog) {
	mux.HandleFunc(EventsPath, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		min, err := ParseLevel(req.URL.Query().Get("level"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			since, err = strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		events := log.Events(since, min)
		if s := req.URL.Query().Get("limit"); s != "" {
			limit, err := strconv.Atoi(s)
			if err != nil || limit < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			if len(events) > limit {
				events = events[len(events)-limit:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	})
}

// HealthPath is where MountHealth serves the health summary.
const HealthPath = "/debug/health"

// MountHealth serves source() as indented JSON at /debug/health. The
// source is called per request (so the summary is always current) and
// may return nil for 503 — a server that cannot assemble its health
// picture is not healthy.
func MountHealth(mux *http.ServeMux, source func() any) {
	mux.HandleFunc(HealthPath, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h := source()
		if h == nil {
			http.Error(w, "health unavailable", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
}

// DumpOps writes a final operational snapshot — the retained event log
// as JSON lines, then a Prometheus metrics snapshot — the
// graceful-shutdown flush shared by the binaries. Either source may be
// nil; section headers are comment lines so the dump stays greppable
// and line-parseable.
func DumpOps(w io.Writer, log *EventLog, min slog.Level, reg *Registry) error {
	if log != nil {
		events := log.Events(0, min)
		if _, err := fmt.Fprintf(w, "# event log (%d events retained)\n", len(events)); err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	if reg != nil {
		if _, err := fmt.Fprintln(w, "# final metrics snapshot"); err != nil {
			return err
		}
		return reg.WritePrometheus(w)
	}
	return nil
}
