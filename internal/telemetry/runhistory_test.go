package telemetry

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func summary(job, label string, makespan float64) RunSummary {
	return RunSummary{
		Time:            time.Now(),
		Job:             job,
		Label:           label,
		MakespanSeconds: makespan,
		PhaseSeconds:    map[string]float64{"map": makespan * 0.5, "reduce": makespan * 0.3},
		Imbalance:       1.1,
	}
}

func TestRunHistoryPersistsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	h, err := OpenRunHistory(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := h.Append(summary("skyline:angle", "n=1000", 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	h2, err := OpenRunHistory(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h2.Runs()); got != 3 {
		t.Fatalf("reloaded %d runs, want 3", got)
	}
}

func TestRunHistoryBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	h, err := OpenRunHistory(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := h.Append(summary("j", "l", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	runs := h.Runs()
	if len(runs) != 5 {
		t.Fatalf("retained %d runs, want 5", len(runs))
	}
	if runs[len(runs)-1].MakespanSeconds != 11 {
		t.Fatalf("lost the newest run: %+v", runs[len(runs)-1])
	}
	// The file compacts too.
	h2, err := OpenRunHistory(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h2.Runs()); got != 5 {
		t.Fatalf("file retained %d runs, want 5", got)
	}
}

func TestRunHistoryDetectsRegression(t *testing.T) {
	h, err := OpenRunHistory("", 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.Append(summary("skyline:angle", "n=1000", 1.0))
	}
	if regs := h.CompareLatest(); len(regs) != 0 {
		t.Fatalf("steady runs flagged: %+v", regs)
	}
	// A 2x slower run regresses makespan and its phases.
	h.Append(summary("skyline:angle", "n=1000", 2.0))
	regs := h.CompareLatest()
	found := false
	for _, r := range regs {
		if r.Metric == "makespan_seconds" {
			found = true
			if r.Ratio < 1.9 || r.Ratio > 2.1 {
				t.Fatalf("makespan ratio %.2f, want ~2.0", r.Ratio)
			}
		}
	}
	if !found {
		t.Fatalf("2x makespan not flagged: %+v", regs)
	}
	// Runs of a different shape never form the baseline.
	h.Append(summary("skyline:angle", "n=9999999", 50.0))
	for _, r := range h.CompareLatest() {
		t.Fatalf("first run of a new shape flagged: %+v", r)
	}
}

func TestRunHistorySkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	h, _ := OpenRunHistory(path, 10)
	h.Append(summary("j", "l", 1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{truncated garbage\n")
	f.Close()
	h2, err := OpenRunHistory(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h2.Runs()); got != 1 {
		t.Fatalf("got %d runs from a file with one good line, want 1", got)
	}
}

func TestRunHistoryNil(t *testing.T) {
	var h *RunHistory
	if err := h.Append(RunSummary{}); err != nil {
		t.Fatal(err)
	}
	if h.Runs() != nil || h.CompareLatest() != nil {
		t.Fatal("nil history must no-op")
	}
}
