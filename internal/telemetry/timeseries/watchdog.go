package timeseries

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The anomaly watchdog closes the observe→notice loop: a small rule
// engine evaluated on cadence against the sampler's rings. A rule that
// starts firing (the rising edge — a firing rule stays quiet until it
// clears and fires again) emits one EventLog warning, increments
// telemetry_anomalies_total{rule}, and can trigger capture-on-anomaly:
// an on-disk CPU+heap pprof pair taken while the anomaly is still live,
// rate-limited by a cooldown so a flapping rule cannot fill the disk.

// Finding is one firing rule evaluation: which series tripped and why.
type Finding struct {
	// Series is the ring that tripped the rule (one finding per series).
	Series string
	// Detail is a short human explanation ("rate 0.0/s over 300ms").
	Detail string
	// Attrs are structured key/values for the anomaly event (e.g. the
	// worker id extracted from the series labels).
	Attrs []telemetry.Attr
}

// Rule is one anomaly detector. Eval inspects the sampler's rings and
// returns the currently-firing findings (empty = healthy).
type Rule struct {
	Name string
	Eval func(s *Sampler) []Finding
}

// WatchdogConfig tunes a Watchdog.
type WatchdogConfig struct {
	// Interval is the evaluation cadence. Defaults to the sampler's
	// sampling interval.
	Interval time.Duration
	// Events receives one warning per anomaly rising edge (nil drops).
	Events *telemetry.EventLog
	// Metrics receives telemetry_anomalies_total{rule} and
	// telemetry_anomaly_captures_total (nil drops).
	Metrics *telemetry.Registry
	// CaptureDir, when non-empty, enables capture-on-anomaly: a CPU and
	// a heap profile written there on each captured anomaly.
	CaptureDir string
	// CaptureCooldown is the minimum spacing between captures (across
	// all rules). Defaults to 5 minutes.
	CaptureCooldown time.Duration
	// CPUProfileDuration is how long the capture's CPU profile runs.
	// Defaults to 1s.
	CPUProfileDuration time.Duration
}

func (c WatchdogConfig) withDefaults(s *Sampler) WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = s.Interval()
		if c.Interval <= 0 {
			c.Interval = time.Second
		}
	}
	if c.CaptureCooldown <= 0 {
		c.CaptureCooldown = 5 * time.Minute
	}
	if c.CPUProfileDuration <= 0 {
		c.CPUProfileDuration = time.Second
	}
	return c
}

// Capture records one on-disk profile pair.
type Capture struct {
	Rule     string    `json:"rule"`
	Time     time.Time `json:"time"`
	CPUFile  string    `json:"cpu_file"`
	HeapFile string    `json:"heap_file"`
	Err      string    `json:"err,omitempty"`
}

// Watchdog evaluates rules against a sampler on cadence.
type Watchdog struct {
	s     *Sampler
	cfg   WatchdogConfig
	rules []Rule

	mu          sync.Mutex
	firing      map[string]bool // rule name → was firing last tick
	lastCapture time.Time
	capturing   bool
	captures    []Capture
	seq         int

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewWatchdog builds a watchdog over s with the given rules.
func NewWatchdog(s *Sampler, cfg WatchdogConfig, rules ...Rule) *Watchdog {
	return &Watchdog{
		s:      s,
		cfg:    cfg.withDefaults(s),
		rules:  rules,
		firing: make(map[string]bool),
		stopc:  make(chan struct{}),
	}
}

// Start launches the background evaluation loop.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		ticker := time.NewTicker(w.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.stopc:
				return
			case <-ticker.C:
				w.Evaluate()
			}
		}
	}()
}

// Stop ends the evaluation loop (a capture in flight finishes on its
// own goroutine).
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() {
		close(w.stopc)
		w.wg.Wait()
	})
}

// Captures returns the captures recorded so far.
func (w *Watchdog) Captures() []Capture {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Capture(nil), w.captures...)
}

// Evaluate runs every rule once. The background loop calls it on
// cadence; tests call it directly.
func (w *Watchdog) Evaluate() {
	if w == nil {
		return
	}
	for _, rule := range w.rules {
		findings := rule.Eval(w.s)
		w.mu.Lock()
		was := w.firing[rule.Name]
		w.firing[rule.Name] = len(findings) > 0
		w.mu.Unlock()
		if len(findings) == 0 || was {
			continue // healthy, or still the same incident
		}
		// Rising edge: one event + counter per finding, one capture per
		// incident (the cooldown arbitrates across rules).
		for _, f := range findings {
			attrs := append([]telemetry.Attr{
				telemetry.A("rule", rule.Name),
				telemetry.A("series", f.Series),
				telemetry.A("detail", f.Detail),
			}, f.Attrs...)
			w.cfg.Events.Warn("anomaly detected", attrs...)
		}
		if reg := w.cfg.Metrics; reg != nil {
			reg.Counter("telemetry_anomalies_total", telemetry.L("rule", rule.Name)).
				Add(int64(len(findings)))
		}
		w.maybeCapture(rule.Name)
	}
}

// maybeCapture starts an async CPU+heap capture unless disabled, inside
// the cooldown, or already capturing.
func (w *Watchdog) maybeCapture(rule string) {
	if w.cfg.CaptureDir == "" {
		return
	}
	w.mu.Lock()
	now := time.Now()
	if w.capturing || (!w.lastCapture.IsZero() && now.Sub(w.lastCapture) < w.cfg.CaptureCooldown) {
		w.mu.Unlock()
		return
	}
	w.capturing = true
	w.lastCapture = now
	w.seq++
	seq := w.seq
	w.mu.Unlock()

	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		cap := w.capture(rule, now, seq)
		w.mu.Lock()
		w.captures = append(w.captures, cap)
		w.capturing = false
		w.mu.Unlock()
		if cap.Err != "" {
			w.cfg.Events.Warn("anomaly capture failed",
				telemetry.A("rule", rule), telemetry.A("err", cap.Err))
			return
		}
		if reg := w.cfg.Metrics; reg != nil {
			reg.Counter("telemetry_anomaly_captures_total").Inc()
		}
		w.cfg.Events.Info("anomaly profile captured",
			telemetry.A("rule", rule),
			telemetry.A("cpu_file", cap.CPUFile),
			telemetry.A("heap_file", cap.HeapFile))
	}()
}

// capture writes the CPU and heap profile pair.
func (w *Watchdog) capture(rule string, at time.Time, seq int) Capture {
	cap := Capture{Rule: rule, Time: at}
	if err := os.MkdirAll(w.cfg.CaptureDir, 0o755); err != nil {
		cap.Err = err.Error()
		return cap
	}
	stamp := fmt.Sprintf("%s-%s-%03d", sanitizeRule(rule), at.Format("20060102T150405"), seq)
	cap.CPUFile = filepath.Join(w.cfg.CaptureDir, "anomaly-"+stamp+".cpu.pprof")
	cap.HeapFile = filepath.Join(w.cfg.CaptureDir, "anomaly-"+stamp+".heap.pprof")

	cf, err := os.Create(cap.CPUFile)
	if err != nil {
		cap.Err = err.Error()
		return cap
	}
	// StartCPUProfile fails when another CPU profile is already running
	// (e.g. a /debug/pprof/profile scrape) — record and move on, the
	// heap profile is still worth taking.
	cpuErr := pprof.StartCPUProfile(cf)
	if cpuErr == nil {
		select {
		case <-time.After(w.cfg.CPUProfileDuration):
		case <-w.stopc:
		}
		pprof.StopCPUProfile()
	}
	if err := cf.Close(); err != nil && cpuErr == nil {
		cpuErr = err
	}
	hf, err := os.Create(cap.HeapFile)
	if err != nil {
		cap.Err = err.Error()
		return cap
	}
	heapErr := pprof.WriteHeapProfile(hf)
	if err := hf.Close(); err != nil && heapErr == nil {
		heapErr = err
	}
	switch {
	case cpuErr != nil && heapErr != nil:
		cap.Err = cpuErr.Error() + "; " + heapErr.Error()
	case cpuErr != nil:
		cap.Err = cpuErr.Error()
	case heapErr != nil:
		cap.Err = heapErr.Error()
	}
	return cap
}

// sanitizeRule makes a rule name filesystem-safe.
func sanitizeRule(rule string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, rule)
}

// ---------------------------------------------------------------------------
// Rule constructors

// familySeries returns the sampled ids belonging to a metric family:
// the bare name or name{...labels}.
func familySeries(s *Sampler, name string) []string {
	var out []string
	for _, id := range s.SeriesNames() {
		if id == name || strings.HasPrefix(id, name+"{") {
			out = append(out, id)
		}
	}
	return out
}

// labelOf extracts one label value from a rendered series id ("" when
// absent).
func labelOf(id, key string) string {
	_, labels, err := telemetry.ParseSeriesID(id)
	if err != nil {
		return ""
	}
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// PairedStallRule detects a stalled producer: for every series of the
// progress family (a cumulative count, e.g. per-worker tasks done)
// whose paired active series (same label set under activeName, e.g.
// in-flight tasks) stayed >= minActive across the whole window, fire
// when the progress series made no progress over that window. The
// label key (e.g. "worker") names the stalled party in the finding.
//
// This is the throughput-stall detector the acceptance run exercises: a
// worker holding an in-flight task for the whole window while its
// tasks-done count stands still is stalled, and the finding attributes
// the stall to exactly that worker.
func PairedStallRule(name, progressName, activeName, labelKey string, window time.Duration, minActive float64) Rule {
	return Rule{Name: name, Eval: func(s *Sampler) []Finding {
		var findings []Finding
		for _, id := range familySeries(s, progressName) {
			_, labels, err := telemetry.ParseSeriesID(id)
			if err != nil {
				continue
			}
			activeID := telemetry.RenderSeriesID(activeName, labels)
			act := s.Window(activeID, window)
			if len(act) < 2 {
				continue
			}
			active := true
			for _, p := range act {
				if p.Value < minActive {
					active = false
					break
				}
			}
			if !active {
				continue
			}
			rate, ok := s.Rate(id, window)
			if !ok || rate > 0 {
				continue
			}
			f := Finding{
				Series: id,
				Detail: fmt.Sprintf("active >= %g for %s with zero progress", minActive, window),
			}
			if who := labelOf(id, labelKey); who != "" {
				f.Attrs = append(f.Attrs, telemetry.A(labelKey, who))
			}
			findings = append(findings, f)
		}
		return findings
	}}
}

// GaugeAboveRule fires for every series of the family whose latest
// sample is >= threshold — heartbeat gaps (worker state >= suspect) and
// budget pressure (reducer peak >= fraction of the budget) are both
// this shape.
func GaugeAboveRule(name, family string, threshold float64, labelKey string) Rule {
	return Rule{Name: name, Eval: func(s *Sampler) []Finding {
		var findings []Finding
		for _, id := range familySeries(s, family) {
			last, ok := s.Last(id)
			if !ok || last.Value < threshold {
				continue
			}
			f := Finding{
				Series: id,
				Detail: fmt.Sprintf("value %g >= threshold %g", last.Value, threshold),
			}
			if labelKey != "" {
				if who := labelOf(id, labelKey); who != "" {
					f.Attrs = append(f.Attrs, telemetry.A(labelKey, who))
				}
			}
			findings = append(findings, f)
		}
		return findings
	}}
}

// RateAboveRule fires for every series of the family whose windowed
// rate exceeds perSecond — the GC-pause-spike shape: the rate of
// process_gc_pause_seconds_total is the fraction of wall time spent in
// stop-the-world pause.
func RateAboveRule(name, family string, perSecond float64, window time.Duration) Rule {
	return Rule{Name: name, Eval: func(s *Sampler) []Finding {
		var findings []Finding
		for _, id := range familySeries(s, family) {
			rate, ok := s.Rate(id, window)
			if !ok || rate <= perSecond {
				continue
			}
			findings = append(findings, Finding{
				Series: id,
				Detail: fmt.Sprintf("rate %.4g/s > %.4g/s over %s", rate, perSecond, window),
			})
		}
		return findings
	}}
}
