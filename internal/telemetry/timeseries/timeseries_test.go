package timeseries

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock drives the sampler deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) tick(d time.Duration)    { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func bind(s *Sampler, c *fakeClock) *Sampler { s.now = c.now; return s }

func TestSamplerWindowAndWrap(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("g")
	clock := newFakeClock()
	s := bind(NewSampler(reg, Config{Interval: time.Second, Retention: 4}), clock)

	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		s.Sample()
		clock.tick(time.Second)
	}
	if got := s.Samples(); got != 10 {
		t.Fatalf("Samples() = %d, want 10", got)
	}
	pts := s.Window("g", 0)
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4 (ring wrapped)", len(pts))
	}
	// Oldest-first: the last 4 of the 10 samples.
	for i, want := range []float64{6, 7, 8, 9} {
		if pts[i].Value != want {
			t.Errorf("pts[%d].Value = %g, want %g", i, pts[i].Value, want)
		}
	}
	if !(pts[0].UnixNano < pts[3].UnixNano) {
		t.Errorf("points not oldest-first: %v", pts)
	}

	// A bounded window trims older samples. The clock now reads 1010s
	// and samples sit at 1006..1009s, so a 2.5s window (cutoff 1007.5)
	// keeps the 1008 and 1009 samples.
	got := s.Window("g", 2500*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("2.5s window holds %d points, want 2", len(got))
	}
}

func TestSamplerLateSeriesHasNaNHistory(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := reg.Counter("a")
	clock := newFakeClock()
	s := bind(NewSampler(reg, Config{Interval: time.Second, Retention: 8}), clock)

	a.Inc()
	s.Sample()
	clock.tick(time.Second)
	// Series b appears after the first tick: its slot-0 history is NaN
	// and must be skipped, not returned as a zero.
	b := reg.Gauge("b")
	b.Set(42)
	s.Sample()
	if pts := s.Window("b", 0); len(pts) != 1 || pts[0].Value != 42 {
		t.Fatalf("late series window = %v, want exactly [42]", pts)
	}
}

func TestRateClampsCounterResets(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("c") // gauge stands in for a counter that can reset
	clock := newFakeClock()
	s := bind(NewSampler(reg, Config{Interval: time.Second, Retention: 16}), clock)

	// 0 → 10 → 20 → (restart) 2 → 12 over 4 intervals: positive rises are
	// 10+10+10 = 30 over 4s; the reset step contributes zero, not -18.
	for _, v := range []float64{0, 10, 20, 2, 12} {
		g.Set(v)
		s.Sample()
		clock.tick(time.Second)
	}
	rate, ok := s.Rate("c", 0)
	if !ok {
		t.Fatal("Rate not ok")
	}
	if want := 30.0 / 4.0; math.Abs(rate-want) > 1e-9 {
		t.Errorf("rate = %g, want %g (resets clamped)", rate, want)
	}

	// All-decreasing series rates to exactly zero.
	reg2 := telemetry.NewRegistry()
	g2 := reg2.Gauge("d")
	clock2 := newFakeClock()
	s2 := bind(NewSampler(reg2, Config{Interval: time.Second, Retention: 16}), clock2)
	for _, v := range []float64{100, 50, 0} {
		g2.Set(v)
		s2.Sample()
		clock2.tick(time.Second)
	}
	if rate, ok := s2.Rate("d", 0); !ok || rate != 0 {
		t.Errorf("decreasing series rate = %g ok=%v, want 0 true", rate, ok)
	}
}

func TestMinMaxQuantileLast(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("g")
	clock := newFakeClock()
	s := bind(NewSampler(reg, Config{Interval: time.Second, Retention: 16}), clock)
	for _, v := range []float64{5, 1, 9, 3, 7} {
		g.Set(v)
		s.Sample()
		clock.tick(time.Second)
	}
	min, max, ok := s.MinMax("g", 0)
	if !ok || min != 1 || max != 9 {
		t.Errorf("MinMax = %g,%g,%v want 1,9,true", min, max, ok)
	}
	if q, ok := s.Quantile("g", 0.5, 0); !ok || q != 5 {
		t.Errorf("median = %g,%v want 5,true", q, ok)
	}
	if q, ok := s.Quantile("g", 1, 0); !ok || q != 9 {
		t.Errorf("p100 = %g,%v want 9,true", q, ok)
	}
	if last, ok := s.Last("g"); !ok || last.Value != 7 {
		t.Errorf("Last = %v,%v want 7,true", last, ok)
	}
}

func TestHistogramSampledAsCountAndSum(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10}, telemetry.L("op", "read"))
	h.Observe(0.5)
	h.Observe(5)
	s := NewSampler(reg, Config{Retention: 4})
	s.Sample()
	if last, ok := s.Last(`lat_count{op="read"}`); !ok || last.Value != 2 {
		t.Errorf("lat_count = %v,%v want 2,true", last, ok)
	}
	if last, ok := s.Last(`lat_sum{op="read"}`); !ok || last.Value != 5.5 {
		t.Errorf("lat_sum = %v,%v want 5.5,true", last, ok)
	}
}

func TestSamplePathZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 10; i++ {
		reg.Counter("ctr", telemetry.L("i", string(rune('a'+i)))).Inc()
	}
	reg.Gauge("g").Set(1)
	s := NewSampler(reg, Config{Retention: 8})
	s.Sample() // warm-up: rings allocate on first sight
	allocs := testing.AllocsPerRun(100, func() { s.Sample() })
	if allocs > 0 {
		t.Errorf("steady-state Sample allocates %.1f objects/op, want 0", allocs)
	}
}

func TestNilSamplerSafe(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	s.Sample()
	if pts := s.Window("x", 0); pts != nil {
		t.Errorf("nil Window = %v", pts)
	}
	if _, ok := s.Rate("x", 0); ok {
		t.Error("nil Rate ok")
	}
	if doc := s.Doc(nil, 0); len(doc.Series) != 0 {
		t.Errorf("nil Doc = %+v", doc)
	}
}

func TestStopTakesFinalSample(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("g")
	s := NewSampler(reg, Config{Interval: time.Hour, Retention: 8})
	s.Start()
	g.Set(77)
	s.Stop() // ticker never fired; Stop's flush must still capture 77
	if last, ok := s.Last("g"); !ok || last.Value != 77 {
		t.Fatalf("after Stop, Last = %v,%v want 77,true", last, ok)
	}
}

func TestMountServesFilteredJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("rpcmr_tasks_done_total").Add(3)
	reg.Gauge("other").Set(9)
	s := NewSampler(reg, Config{Interval: time.Second, Retention: 8})
	s.Sample()
	s.Sample()

	mux := http.NewServeMux()
	Mount(mux, s)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + Path + "?series=rpcmr_")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Doc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Samples != 2 {
		t.Errorf("Samples = %d, want 2", doc.Samples)
	}
	if len(doc.Series) != 1 {
		t.Fatalf("filtered series = %v, want only rpcmr_tasks_done_total", doc.Series)
	}
	pts := doc.Series["rpcmr_tasks_done_total"]
	if len(pts) != 2 || pts[1].Value != 3 {
		t.Errorf("points = %v, want two samples of value 3", pts)
	}

	// Bad window parameter is a 400, not a panic.
	resp2, err := http.Get(srv.URL + Path + "?window=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window status = %d, want 400", resp2.StatusCode)
	}
}
