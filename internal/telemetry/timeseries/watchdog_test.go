package timeseries

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// sampleSeries drives a sampler through a scripted value sequence, one
// sample per second of fake time.
func sampleSeries(t *testing.T, series map[string][]float64, n int) *Sampler {
	t.Helper()
	reg := telemetry.NewRegistry()
	gauges := make(map[string]*telemetry.Gauge)
	for id := range series {
		name, labels, err := telemetry.ParseSeriesID(id)
		if err != nil {
			t.Fatalf("bad series id %q: %v", id, err)
		}
		gauges[id] = reg.Gauge(name, labels...)
	}
	clock := newFakeClock()
	s := bind(NewSampler(reg, Config{Interval: time.Second, Retention: n + 1}), clock)
	for i := 0; i < n; i++ {
		for id, vals := range series {
			gauges[id].Set(vals[i])
		}
		s.Sample()
		clock.tick(time.Second)
	}
	return s
}

func TestPairedStallRuleFiresOnlyForStalledWorker(t *testing.T) {
	// w0 progresses; w1 holds a task with zero progress; w2 is idle
	// (inflight 0) with zero progress — only w1 is a stall.
	s := sampleSeries(t, map[string][]float64{
		`rpcmr_worker_tasks_done{worker="w0"}`: {1, 2, 3, 4, 5},
		`rpcmr_worker_inflight{worker="w0"}`:   {1, 1, 1, 1, 1},
		`rpcmr_worker_tasks_done{worker="w1"}`: {3, 3, 3, 3, 3},
		`rpcmr_worker_inflight{worker="w1"}`:   {1, 1, 1, 1, 1},
		`rpcmr_worker_tasks_done{worker="w2"}`: {7, 7, 7, 7, 7},
		`rpcmr_worker_inflight{worker="w2"}`:   {0, 0, 0, 0, 0},
	}, 5)
	rule := PairedStallRule("stall", "rpcmr_worker_tasks_done", "rpcmr_worker_inflight", "worker", 10*time.Second, 1)
	findings := rule.Eval(s)
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly one (w1)", findings)
	}
	if findings[0].Series != `rpcmr_worker_tasks_done{worker="w1"}` {
		t.Errorf("stalled series = %q, want w1", findings[0].Series)
	}
	var worker string
	for _, a := range findings[0].Attrs {
		if a.Key == "worker" {
			worker, _ = a.Value.(string)
		}
	}
	if worker != "w1" {
		t.Errorf("finding attributes worker=%q, want w1", worker)
	}
}

func TestGaugeAboveAndRateAboveRules(t *testing.T) {
	s := sampleSeries(t, map[string][]float64{
		`rpcmr_worker_state{worker="w0"}`: {0, 0, 0},
		`rpcmr_worker_state{worker="w1"}`: {0, 1, 2},
		`gc_total`:                        {0, 0.2, 0.4}, // 0.2/s pause rate
	}, 3)

	g := GaugeAboveRule("heartbeat", "rpcmr_worker_state", 1, "worker")
	findings := g.Eval(s)
	if len(findings) != 1 || findings[0].Series != `rpcmr_worker_state{worker="w1"}` {
		t.Fatalf("gauge findings = %+v, want only w1", findings)
	}

	r := RateAboveRule("gc", "gc_total", 0.05, 10*time.Second)
	if f := r.Eval(s); len(f) != 1 {
		t.Fatalf("rate findings = %+v, want one", f)
	}
	rQuiet := RateAboveRule("gc", "gc_total", 0.5, 10*time.Second)
	if f := rQuiet.Eval(s); len(f) != 0 {
		t.Fatalf("rate findings above threshold 0.5 = %+v, want none", f)
	}
}

func TestWatchdogEdgeDetectionAndCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(64)
	s := NewSampler(reg, Config{Retention: 4})
	firing := true
	rule := Rule{Name: "test-rule", Eval: func(*Sampler) []Finding {
		if firing {
			return []Finding{{Series: "x", Detail: "on"}}
		}
		return nil
	}}
	w := NewWatchdog(s, WatchdogConfig{Events: events, Metrics: reg}, rule)

	// Three firing evaluations = one rising edge = one event, one count.
	w.Evaluate()
	w.Evaluate()
	w.Evaluate()
	count := reg.Counter("telemetry_anomalies_total", telemetry.L("rule", "test-rule")).Value()
	if count != 1 {
		t.Fatalf("anomalies counter = %d after 3 firing evals, want 1", count)
	}
	warns := 0
	for _, ev := range events.Events(0, 0) {
		if ev.Msg == "anomaly detected" {
			warns++
		}
	}
	if warns != 1 {
		t.Fatalf("anomaly events = %d, want 1", warns)
	}

	// Clear, then fire again: a second incident, a second count.
	firing = false
	w.Evaluate()
	firing = true
	w.Evaluate()
	if got := reg.Counter("telemetry_anomalies_total", telemetry.L("rule", "test-rule")).Value(); got != 2 {
		t.Fatalf("anomalies counter after re-fire = %d, want 2", got)
	}
}

func TestWatchdogCaptureWritesProfilesOnceWithinCooldown(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(64)
	s := NewSampler(reg, Config{Retention: 4})
	firing := true
	rule := Rule{Name: "cap-rule", Eval: func(*Sampler) []Finding {
		if firing {
			return []Finding{{Series: "x", Detail: "on"}}
		}
		return nil
	}}
	w := NewWatchdog(s, WatchdogConfig{
		Events:             events,
		Metrics:            reg,
		CaptureDir:         dir,
		CaptureCooldown:    time.Hour,
		CPUProfileDuration: 10 * time.Millisecond,
	}, rule)

	// First incident captures; a cleared-and-refired incident inside the
	// cooldown must not.
	w.Evaluate()
	firing = false
	w.Evaluate()
	firing = true
	w.Evaluate()
	w.Stop() // waits for the capture goroutine

	caps := w.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want exactly 1 (cooldown)", len(caps))
	}
	if caps[0].Err != "" {
		t.Fatalf("capture error: %s", caps[0].Err)
	}
	for _, f := range []string{caps[0].CPUFile, caps[0].HeapFile} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
		if filepath.Dir(f) != dir {
			t.Errorf("profile %s outside capture dir %s", f, dir)
		}
	}
	if got := reg.Counter("telemetry_anomaly_captures_total").Value(); got != 1 {
		t.Errorf("captures counter = %d, want 1", got)
	}
}

func TestWatchdogNoCaptureWithoutDir(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSampler(reg, Config{Retention: 4})
	rule := Rule{Name: "r", Eval: func(*Sampler) []Finding {
		return []Finding{{Series: "x"}}
	}}
	w := NewWatchdog(s, WatchdogConfig{Metrics: reg}, rule)
	w.Evaluate()
	w.Stop()
	if caps := w.Captures(); len(caps) != 0 {
		t.Fatalf("captures without dir = %d, want 0", len(caps))
	}
}
