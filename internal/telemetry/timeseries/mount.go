package timeseries

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// Path is where Mount serves the rings.
const Path = "/debug/timeseries"

// Doc is the /debug/timeseries JSON document.
type Doc struct {
	IntervalSeconds float64            `json:"interval_seconds"`
	Retention       int                `json:"retention"`
	Samples         int                `json:"samples"`
	Series          map[string][]Point `json:"series"`
}

// Doc assembles the exposition document. series filters to ids equal to
// or prefixed by any of the given names (all series when empty); window
// bounds the returned history (everything retained when <= 0).
func (s *Sampler) Doc(seriesFilter []string, window time.Duration) Doc {
	doc := Doc{Series: map[string][]Point{}}
	if s == nil {
		return doc
	}
	doc.IntervalSeconds = s.cfg.Interval.Seconds()
	doc.Retention = s.cfg.Retention
	doc.Samples = s.Samples()
	for _, id := range s.SeriesNames() {
		if !matchSeries(id, seriesFilter) {
			continue
		}
		if pts := s.Window(id, window); len(pts) > 0 {
			doc.Series[id] = pts
		}
	}
	return doc
}

// matchSeries reports whether id passes the filter: any filter entry
// that is a prefix of the id matches, so "rpcmr_task" selects the whole
// family and a full rendered id selects one series.
func matchSeries(id string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if strings.HasPrefix(id, f) {
			return true
		}
	}
	return false
}

// Mount serves the sampler's rings as JSON at /debug/timeseries.
// Query parameters: ?series=a,b filters to those ids or prefixes,
// ?window=30s bounds the returned history.
func Mount(mux *http.ServeMux, s *Sampler) {
	mux.HandleFunc(Path, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var filter []string
		if raw := req.URL.Query().Get("series"); raw != "" {
			for _, f := range strings.Split(raw, ",") {
				if f = strings.TrimSpace(f); f != "" {
					filter = append(filter, f)
				}
			}
		}
		var window time.Duration
		if raw := req.URL.Query().Get("window"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
			window = d
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Doc(filter, window))
	})
}
