// Package timeseries gives the metrics registry a memory: a Sampler
// periodically copies every scalar series of a telemetry.Registry into
// bounded in-memory rings, turning the registry's instantaneous values
// into short history that windowed queries — rate, min/max, quantile —
// and the anomaly watchdog can reason about. A /debug/timeseries mount
// serves the rings as JSON for dashboards (skytop draws its sparklines
// from it).
//
// The sample path is allocation-free after warm-up: series ids are
// cached inside the registry (telemetry.VisitSamples), ring slots are
// pre-sized float64 arrays, and the per-tick work is one map lookup and
// one store per series. New series allocate their ring exactly once,
// on first sight.
package timeseries

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Config tunes a Sampler.
type Config struct {
	// Interval is the sampling cadence. Defaults to 1s.
	Interval time.Duration
	// Retention is how many samples each series ring keeps. Defaults to
	// 300 (5 minutes at the default cadence).
	Retention int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Retention < 2 {
		c.Retention = 300
	}
	return c
}

// Point is one recorded sample of one series.
type Point struct {
	UnixNano int64   `json:"t"`
	Value    float64 `json:"v"`
}

// ring is one series' bounded value history, aligned with the sampler's
// shared timestamp ring: slot i holds the value recorded at tick t where
// t % retention == i. Slots from before the series existed hold NaN.
type ring struct {
	vals []float64
}

// Sampler owns the rings and the background sampling loop. All methods
// are safe for concurrent use; a nil *Sampler answers every query empty,
// so call sites can hold a bare handle when sampling is off.
type Sampler struct {
	reg *telemetry.Registry
	cfg Config
	now func() time.Time // test hook

	mu     sync.RWMutex
	times  []int64 // shared timestamp ring, unix nanos; 0 = never written
	tick   int     // total samples taken
	series map[string]*ring

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// visit is the pre-bound VisitSamples callback, hoisted so the
	// steady-state sample path closes over nothing per tick.
	visit func(id string, v float64)
	slot  int // ring slot the in-progress sample writes (mu held)
}

// NewSampler builds a sampler over reg. Call Start to begin the
// periodic loop, or drive Sample directly (tests, final flushes).
func NewSampler(reg *telemetry.Registry, cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	s := &Sampler{
		reg:    reg,
		cfg:    cfg,
		now:    time.Now,
		times:  make([]int64, cfg.Retention),
		series: make(map[string]*ring),
		stopc:  make(chan struct{}),
	}
	s.visit = func(id string, v float64) {
		r := s.series[id]
		if r == nil {
			r = &ring{vals: make([]float64, cfg.Retention)}
			for i := range r.vals {
				r.vals[i] = math.NaN()
			}
			s.series[id] = r
		}
		r.vals[s.slot] = v
	}
	return s
}

// Interval reports the configured cadence.
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.Interval
}

// Retention reports the configured ring capacity.
func (s *Sampler) Retention() int {
	if s == nil {
		return 0
	}
	return s.cfg.Retention
}

// Start launches the background sampling loop. Safe to call once.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stopc:
				return
			case <-ticker.C:
				s.Sample()
			}
		}
	}()
}

// Stop ends the background loop and takes one final sample, so the last
// state of a draining process is retained (the graceful-shutdown flush
// the binaries call before their debug server goes away).
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stopc)
		s.wg.Wait()
		s.Sample()
	})
}

// Sample takes one sample of every registry series right now. The
// periodic loop calls it on cadence; binaries call it once more on the
// drain path.
func (s *Sampler) Sample() {
	if s == nil {
		return
	}
	now := s.now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slot = s.tick % s.cfg.Retention
	s.times[s.slot] = now
	s.reg.VisitSamples(s.visit)
	s.tick++
}

// Samples reports how many samples have been taken (monotonic; the
// rings retain min(Samples, Retention) of them).
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tick
}

// SeriesNames returns every sampled series id, sorted.
func (s *Sampler) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for id := range s.series {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Window returns the samples of series id recorded within the trailing
// window (all retained samples when window <= 0), oldest first. Slots
// from before the series existed are omitted.
func (s *Sampler) Window(id string, window time.Duration) []Point {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.windowLocked(id, window)
}

// windowLocked is Window with s.mu already held (read side).
func (s *Sampler) windowLocked(id string, window time.Duration) []Point {
	r := s.series[id]
	if r == nil || s.tick == 0 {
		return nil
	}
	n := s.tick
	if n > s.cfg.Retention {
		n = s.cfg.Retention
	}
	var cutoff int64
	if window > 0 {
		cutoff = s.now().Add(-window).UnixNano()
	}
	out := make([]Point, 0, n)
	// Oldest retained tick first.
	for t := s.tick - n; t < s.tick; t++ {
		i := t % s.cfg.Retention
		v := r.vals[i]
		if math.IsNaN(v) || s.times[i] < cutoff {
			continue
		}
		out = append(out, Point{UnixNano: s.times[i], Value: v})
	}
	return out
}

// Rate computes the per-second increase of a cumulative series over the
// trailing window as the sum of positive step deltas divided by the
// elapsed time. Negative steps — a counter reset after a process
// restart — contribute zero instead of going negative, so restarting a
// worker can never render negative throughput. ok is false with fewer
// than two samples in the window.
func (s *Sampler) Rate(id string, window time.Duration) (perSec float64, ok bool) {
	pts := s.Window(id, window)
	if len(pts) < 2 {
		return 0, false
	}
	var rise float64
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Value - pts[i-1].Value; d > 0 {
			rise += d
		}
	}
	dt := float64(pts[len(pts)-1].UnixNano-pts[0].UnixNano) / 1e9
	if dt <= 0 {
		return 0, false
	}
	return rise / dt, true
}

// MinMax returns the smallest and largest sample in the window. ok is
// false when the window holds no samples.
func (s *Sampler) MinMax(id string, window time.Duration) (min, max float64, ok bool) {
	pts := s.Window(id, window)
	if len(pts) == 0 {
		return 0, 0, false
	}
	min, max = pts[0].Value, pts[0].Value
	for _, p := range pts[1:] {
		if p.Value < min {
			min = p.Value
		}
		if p.Value > max {
			max = p.Value
		}
	}
	return min, max, true
}

// Quantile returns the q-quantile (0..1, nearest-rank) of the window's
// sample values. ok is false when the window holds no samples.
func (s *Sampler) Quantile(id string, q float64, window time.Duration) (float64, bool) {
	pts := s.Window(id, window)
	if len(pts) == 0 {
		return 0, false
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Value
	}
	sort.Float64s(vals)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(math.Ceil(q*float64(len(vals)))) - 1
	if i < 0 {
		i = 0
	}
	return vals[i], true
}

// Last returns the most recent sample of series id.
func (s *Sampler) Last(id string) (Point, bool) {
	pts := s.Window(id, 0)
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}
