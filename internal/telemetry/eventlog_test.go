package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestEventLogRingWraparoundOrdering(t *testing.T) {
	l := NewEventLog(16)
	for i := 0; i < 40; i++ {
		l.Info(fmt.Sprintf("event-%d", i), A("i", i))
	}
	events := l.Events(0, slog.LevelDebug)
	if len(events) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(events))
	}
	// The ring keeps the most recent 16 (seq 25..40), in sequence order.
	for i, ev := range events {
		want := uint64(25 + i)
		if ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
		if ev.Msg != fmt.Sprintf("event-%d", want-1) {
			t.Fatalf("event %d: msg %q does not match seq %d", i, ev.Msg, ev.Seq)
		}
	}
	if got := l.LastSeq(); got != 40 {
		t.Fatalf("LastSeq = %d, want 40", got)
	}
}

func TestEventLogLevelAndSinceFilters(t *testing.T) {
	l := NewEventLog(64)
	l.Debug("d1")
	l.Info("i1")
	l.Warn("w1")
	l.Error("e1")
	l.Info("i2")

	if got := len(l.Events(0, slog.LevelWarn)); got != 2 {
		t.Fatalf("level>=warn: %d events, want 2 (w1, e1)", got)
	}
	got := l.Events(3, slog.LevelDebug)
	if len(got) != 2 || got[0].Msg != "e1" || got[1].Msg != "i2" {
		t.Fatalf("since=3: got %+v, want [e1 i2]", got)
	}
	counts := l.LevelCounts()
	for level, want := range map[string]int64{"debug": 1, "info": 2, "warn": 1, "error": 1} {
		if counts[level] != want {
			t.Fatalf("count[%s] = %d, want %d", level, counts[level], want)
		}
	}
}

func TestEventLogSetLevelDropsAtWrite(t *testing.T) {
	l := NewEventLog(16)
	l.SetLevel(slog.LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	if got := l.Events(0, slog.LevelDebug); len(got) != 1 || got[0].Msg != "w" {
		t.Fatalf("got %+v, want only the warn event", got)
	}
}

func TestEventLogMetricsBridge(t *testing.T) {
	l := NewEventLog(16)
	l.Info("before-bind") // pre-bind counts must be replayed
	reg := NewRegistry()
	l.BindMetrics(reg)
	l.Warn("after-bind")
	l.Warn("after-bind-2")
	snap := reg.Snapshot()
	if got := snap.Counters[`events_total{level="info"}`]; got != 1 {
		t.Fatalf("info counter = %d, want 1", got)
	}
	if got := snap.Counters[`events_total{level="warn"}`]; got != 2 {
		t.Fatalf("warn counter = %d, want 2", got)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Info("dropped")
	l.SetLevel(slog.LevelError)
	l.BindMetrics(NewRegistry())
	if got := l.Events(0, slog.LevelDebug); got != nil {
		t.Fatalf("nil log returned events: %v", got)
	}
	if l.LastSeq() != 0 {
		t.Fatal("nil log has a sequence")
	}
}

func TestEventLogConcurrentWriters(t *testing.T) {
	l := NewEventLog(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Info("concurrent", A("g", g), A("i", i))
			}
		}(g)
	}
	wg.Wait()
	if got := l.LastSeq(); got != 1600 {
		t.Fatalf("LastSeq = %d, want 1600", got)
	}
	events := l.Events(0, slog.LevelDebug)
	if len(events) != 128 {
		t.Fatalf("retained %d, want 128", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order: seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
}

func TestEventLogSlogHandler(t *testing.T) {
	l := NewEventLog(16)
	logger := l.Logger().With("job", "sky").WithGroup("task")
	logger.Warn("slow", "id", 7)
	events := l.Events(0, slog.LevelDebug)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Level != "warn" || ev.Msg != "slow" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Attrs["job"] != "sky" {
		t.Fatalf("bound attr missing: %v", ev.Attrs)
	}
	// Events are retained as their JSON lines, so numbers read back as
	// float64 regardless of the logged Go type.
	if v, ok := ev.Attrs["task.id"].(float64); !ok || v != 7 {
		t.Fatalf("grouped attr = %v (%T)", ev.Attrs["task.id"], ev.Attrs["task.id"])
	}
}

func TestMountEventsHTTP(t *testing.T) {
	l := NewEventLog(32)
	l.Debug("d1")
	l.Info("i1", A("worker", "w0"))
	l.Warn("w1")
	mux := http.NewServeMux()
	MountEvents(mux, l)

	get := func(url string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
		return rr
	}

	rr := get(EventsPath)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := strings.Split(strings.TrimSpace(rr.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3: %q", len(lines), rr.Body.String())
	}
	var ev LogEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if ev.Msg != "i1" || ev.Attrs["worker"] != "w0" {
		t.Fatalf("line 2 = %+v", ev)
	}

	if lines := strings.Split(strings.TrimSpace(get(EventsPath+"?level=warn").Body.String()), "\n"); len(lines) != 1 {
		t.Fatalf("level=warn: %d lines, want 1", len(lines))
	}
	if lines := strings.Split(strings.TrimSpace(get(EventsPath+"?since=2").Body.String()), "\n"); len(lines) != 1 {
		t.Fatalf("since=2: %d lines, want 1", len(lines))
	}
	if lines := strings.Split(strings.TrimSpace(get(EventsPath+"?limit=2").Body.String()), "\n"); len(lines) != 2 {
		t.Fatalf("limit=2: %d lines, want 2", len(lines))
	}
	if rr := get(EventsPath + "?level=nope"); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad level: status %d, want 400", rr.Code)
	}
	if rr := get(EventsPath + "?since=abc"); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", rr.Code)
	}
}

func TestMountHealthHTTP(t *testing.T) {
	mux := http.NewServeMux()
	type health struct {
		Status string `json:"status"`
	}
	var src func() any = func() any { return health{Status: "ok"} }
	MountHealth(mux, func() any { return src() })

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, HealthPath, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var h health
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil || h.Status != "ok" {
		t.Fatalf("body %q, err %v", rr.Body.String(), err)
	}

	src = func() any { return nil }
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, HealthPath, nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("nil health: status %d, want 503", rr.Code)
	}
}

func TestDumpOps(t *testing.T) {
	l := NewEventLog(16)
	l.Info("shutdown", A("signal", "terminated"))
	reg := NewRegistry()
	reg.Counter("requests_total").Inc()
	var b strings.Builder
	if err := DumpOps(&b, l, slog.LevelInfo, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# event log (1 events retained)") {
		t.Fatalf("missing event header:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"shutdown"`) {
		t.Fatalf("missing event line:\n%s", out)
	}
	if !strings.Contains(out, "requests_total 1") {
		t.Fatalf("missing metrics snapshot:\n%s", out)
	}
}

func TestEventLogContext(t *testing.T) {
	if EventLogFrom(context.Background()) != nil {
		t.Fatal("empty context has an event log")
	}
	l := NewEventLog(16)
	ctx := WithEventLog(context.Background(), l)
	if EventLogFrom(ctx) != l {
		t.Fatal("event log not plumbed through context")
	}
}
