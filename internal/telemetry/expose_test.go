package telemetry

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", L("code", "200")).Add(3)
	r.Counter("http_requests_total", L("code", "500")).Add(1)
	r.Gauge("temp").Set(36.6)
	h := r.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200"} 3`,
		`http_requests_total{code="500"} 1`,
		"# TYPE temp gauge",
		"temp 36.6",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// One TYPE line per family, even with several series.
	if strings.Count(text, "# TYPE http_requests_total") != 1 {
		t.Error("duplicate TYPE line for a family")
	}

	samples, err := ParsePrometheus(text)
	if err != nil {
		t.Fatalf("own output does not parse: %v", err)
	}
	if samples[`http_requests_total{code="200"}`] != 3 {
		t.Errorf("parsed samples = %v", samples)
	}
	if math.Abs(samples["latency_seconds_sum"]-5.55) > 1e-9 {
		t.Errorf("histogram sum = %v", samples["latency_seconds_sum"])
	}
}

func TestHandlerAndPprofMount(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	r.Counter("ticks_total").Inc()

	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	MountPprof(mux)
	srvMux := httptest.NewServer(mux)
	defer srvMux.Close()

	// pprof index must answer.
	pres, err := srvMux.Client().Get(srvMux.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pres.Body.Close()
	if pres.StatusCode != 200 {
		t.Fatalf("pprof index status %d", pres.StatusCode)
	}

	res, err := srvMux.Client().Get(srvMux.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	samples, err := ParsePrometheus(text)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if samples["ticks_total"] != 1 {
		t.Errorf("ticks_total = %v", samples["ticks_total"])
	}
	if samples["process_goroutines"] <= 0 {
		t.Errorf("process_goroutines = %v, want > 0", samples["process_goroutines"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", L("path", `a"b\c`)).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `weird{path="a\"b\\c"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}
