package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Federation gives the master one pane of glass over the cluster: a
// Federator periodically scrapes every registered worker's /metrics
// endpoint (the same Prometheus text format this package writes),
// re-labels each scraped series with the worker's id, and merges the
// result with the master's own registry into a cluster snapshot served
// at /debug/cluster. A worker that stops answering keeps its last-good
// series, flagged stale — consistent with the rpcmr health state
// machine, where a silent worker is suspect before it is dead, and
// "the worker vanished" is itself signal worth displaying.

// FederationTarget is one scrape target, usually a worker's debug
// server.
type FederationTarget struct {
	// ID labels every series scraped from this target (LabelKey=ID).
	ID string
	// Addr is the host:port of the target's debug server. Empty means
	// the target exposes no metrics (registered without -metrics-addr);
	// it appears in the snapshot with no samples.
	Addr string
	// Stale marks a target the caller already believes is gone (e.g.
	// the health machine declared it dead). The federator skips the
	// scrape and keeps last-good samples.
	Stale bool
}

// FederatorConfig tunes a Federator.
type FederatorConfig struct {
	// Self is the local registry merged into every snapshot under
	// SelfID. Nil skips the local contribution.
	Self *Registry
	// SelfID labels the local registry's series. Defaults to "master".
	SelfID string
	// Targets enumerates the current scrape targets each cycle —
	// typically Master.DebugTargets, so workers join and leave the
	// federation as they register and die.
	Targets func() []FederationTarget
	// Interval is the scrape cadence. Defaults to 2s.
	Interval time.Duration
	// Timeout bounds each target scrape. Defaults to min(Interval, 1s).
	Timeout time.Duration
	// LabelKey is the label injected into scraped series. Defaults to
	// "worker".
	LabelKey string
	// Events receives scrape-failure warnings, once per target outage
	// (nil drops).
	Events *EventLog
	// Client overrides the scrape HTTP client (tests). Defaults to a
	// client with the configured Timeout.
	Client *http.Client
}

func (c FederatorConfig) withDefaults() FederatorConfig {
	if c.SelfID == "" {
		c.SelfID = "master"
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
		if c.Interval < c.Timeout {
			c.Timeout = c.Interval
		}
	}
	if c.LabelKey == "" {
		c.LabelKey = "worker"
	}
	return c
}

// WorkerSnapshot is one federation member's contribution to the
// cluster snapshot.
type WorkerSnapshot struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	// Stale is true when the samples are last-good values from before
	// the target stopped answering (or was declared dead).
	Stale bool `json:"stale"`
	// LastScrape is when the samples were last refreshed (zero = never
	// scraped successfully).
	LastScrape time.Time `json:"last_scrape,omitempty"`
	// Err is the most recent scrape error, cleared on success.
	Err string `json:"err,omitempty"`
	// Samples maps re-labeled series id → value.
	Samples map[string]float64 `json:"samples,omitempty"`
}

// ClusterSnapshot is the /debug/cluster document: every member's
// samples plus the deterministic merge.
type ClusterSnapshot struct {
	Time    time.Time        `json:"time"`
	Workers []WorkerSnapshot `json:"workers"`
	// Merged is the union of every member's samples. Ids colliding
	// across members (possible only for series that already carried the
	// federation label at the source) merge by summation, so the merge
	// is order-independent and deterministic.
	Merged map[string]float64 `json:"merged"`
}

// memberState is the federator's retained per-target state.
type memberState struct {
	addr       string
	stale      bool
	lastScrape time.Time
	err        string
	samples    map[string]float64
	failing    bool // edge detector for the scrape-failure event
}

// Federator owns the scrape loop and the retained member states.
type Federator struct {
	cfg FederatorConfig

	mu      sync.Mutex
	members map[string]*memberState

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewFederator builds a federator; call Start for the periodic loop or
// ScrapeOnce to drive it manually.
func NewFederator(cfg FederatorConfig) *Federator {
	return &Federator{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*memberState),
		stopc:   make(chan struct{}),
	}
}

// Start launches the background scrape loop.
func (f *Federator) Start() {
	if f == nil {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		ticker := time.NewTicker(f.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-f.stopc:
				return
			case <-ticker.C:
				f.ScrapeOnce(context.Background())
			}
		}
	}()
}

// Stop ends the scrape loop.
func (f *Federator) Stop() {
	if f == nil {
		return
	}
	f.stopOnce.Do(func() {
		close(f.stopc)
		f.wg.Wait()
	})
}

// ScrapeOnce scrapes every current target and refreshes member states.
// The background loop calls it on cadence; tests call it directly.
func (f *Federator) ScrapeOnce(ctx context.Context) {
	if f == nil || f.cfg.Targets == nil {
		return
	}
	targets := f.cfg.Targets()
	live := make(map[string]bool, len(targets))
	for _, t := range targets {
		live[t.ID] = true
		f.scrapeTarget(ctx, t)
	}
	// A target that left the Targets set entirely (deregistered, not
	// just dead) keeps its last-good samples but is marked stale — the
	// same "gone but remembered" semantics as a dead worker.
	f.mu.Lock()
	for id, m := range f.members {
		if !live[id] {
			m.stale = true
		}
	}
	f.mu.Unlock()
}

// scrapeTarget refreshes one member.
func (f *Federator) scrapeTarget(ctx context.Context, t FederationTarget) {
	f.mu.Lock()
	m := f.members[t.ID]
	if m == nil {
		m = &memberState{}
		f.members[t.ID] = m
	}
	m.addr = t.Addr
	if t.Stale || t.Addr == "" {
		m.stale = t.Stale
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()

	samples, err := f.scrape(ctx, t.Addr)
	f.mu.Lock()
	if err != nil {
		m.stale = true
		m.err = err.Error()
		rising := !m.failing
		m.failing = true
		f.mu.Unlock()
		if rising {
			f.cfg.Events.Warn("federation scrape failed",
				A(f.cfg.LabelKey, t.ID), A("addr", t.Addr), A("err", err.Error()))
		}
		return
	}
	relabeled, relabelErr := f.relabel(samples, t.ID)
	m.samples = relabeled
	m.stale = false
	m.err = ""
	m.lastScrape = time.Now()
	recovered := m.failing
	m.failing = false
	f.mu.Unlock()
	if relabelErr != nil {
		// Unparseable ids were dropped, not fatal — but say so once.
		f.cfg.Events.Warn("federation relabel dropped series",
			A(f.cfg.LabelKey, t.ID), A("err", relabelErr.Error()))
	}
	if recovered {
		f.cfg.Events.Info("federation scrape recovered",
			A(f.cfg.LabelKey, t.ID), A("addr", t.Addr))
	}
}

// scrape fetches and parses one /metrics endpoint.
func (f *Federator) scrape(ctx context.Context, addr string) (map[string]float64, error) {
	url := "http://" + addr + "/metrics"
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	client := f.cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	return ParsePrometheus(string(body))
}

// relabel injects LabelKey=id into every sample id, re-rendering in
// canonical sorted order so federated ids are comparable with native
// registry ids. Histogram bucket series (le label) are skipped — the
// cluster snapshot is a scalar view; _count and _sum survive and carry
// the same information for rates.
func (f *Federator) relabel(samples map[string]float64, id string) (map[string]float64, error) {
	out := make(map[string]float64, len(samples))
	var firstErr error
	for sid, v := range samples {
		if strings.Contains(sid, `le="`) {
			continue
		}
		nid, err := InjectLabel(sid, f.cfg.LabelKey, id)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[nid] += v
	}
	return out, firstErr
}

// Snapshot assembles the current cluster view. The local registry is
// visited live (so the master's own numbers are always fresh); worker
// members contribute their retained samples.
func (f *Federator) Snapshot() ClusterSnapshot {
	snap := ClusterSnapshot{Time: time.Now(), Merged: make(map[string]float64)}
	if f == nil {
		return snap
	}
	if f.cfg.Self != nil {
		self := WorkerSnapshot{
			ID:         f.cfg.SelfID,
			LastScrape: snap.Time,
			Samples:    make(map[string]float64),
		}
		f.cfg.Self.VisitSamples(func(sid string, v float64) {
			nid, err := InjectLabel(sid, f.cfg.LabelKey, f.cfg.SelfID)
			if err != nil {
				return
			}
			self.Samples[nid] += v
		})
		snap.Workers = append(snap.Workers, self)
	}
	f.mu.Lock()
	ids := make([]string, 0, len(f.members))
	for id := range f.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := f.members[id]
		ws := WorkerSnapshot{
			ID:         id,
			Addr:       m.addr,
			Stale:      m.stale,
			LastScrape: m.lastScrape,
			Err:        m.err,
		}
		if len(m.samples) > 0 {
			ws.Samples = make(map[string]float64, len(m.samples))
			for k, v := range m.samples {
				ws.Samples[k] = v
			}
		}
		snap.Workers = append(snap.Workers, ws)
	}
	f.mu.Unlock()
	for _, w := range snap.Workers {
		for k, v := range w.Samples {
			snap.Merged[k] += v
		}
	}
	return snap
}

// ClusterPath is where MountCluster serves the snapshot.
const ClusterPath = "/debug/cluster"

// MountCluster serves the federator's cluster snapshot as JSON at
// /debug/cluster. ?series=prefix filters the merged map and each
// member's samples to ids with that prefix (comma-separated for
// several).
func MountCluster(mux *http.ServeMux, f *Federator) {
	mux.HandleFunc(ClusterPath, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := f.Snapshot()
		if raw := req.URL.Query().Get("series"); raw != "" {
			var prefixes []string
			for _, p := range strings.Split(raw, ",") {
				if p = strings.TrimSpace(p); p != "" {
					prefixes = append(prefixes, p)
				}
			}
			snap.Merged = filterSamples(snap.Merged, prefixes)
			for i := range snap.Workers {
				snap.Workers[i].Samples = filterSamples(snap.Workers[i].Samples, prefixes)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}

// filterSamples keeps ids matching any prefix.
func filterSamples(samples map[string]float64, prefixes []string) map[string]float64 {
	if len(prefixes) == 0 || samples == nil {
		return samples
	}
	out := make(map[string]float64)
	for id, v := range samples {
		for _, p := range prefixes {
			if strings.HasPrefix(id, p) {
				out[id] = v
				break
			}
		}
	}
	return out
}
