package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseSeriesIDRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels []Label
	}{
		{"plain", nil},
		{"one", []Label{L("k", "v")}},
		{"sorted", []Label{L("a", "1"), L("z", "2")}},
		{"escaped", []Label{L("k", `va"l\ue`+"\nnewline")}},
		{"empty_value", []Label{L("k", "")}},
	}
	for _, tc := range cases {
		id := RenderSeriesID(tc.name, tc.labels)
		name, labels, err := ParseSeriesID(id)
		if err != nil {
			t.Fatalf("%s: ParseSeriesID(%q): %v", tc.name, id, err)
		}
		if name != tc.name {
			t.Errorf("%s: name = %q, want %q", tc.name, name, tc.name)
		}
		if RenderSeriesID(name, labels) != id {
			t.Errorf("%s: round-trip %q → %q", tc.name, id, RenderSeriesID(name, labels))
		}
	}
	for _, bad := range []string{`m{`, `m{k=v}`, `m{k="v}`, `m{k="v"x="y"}`, `m{k="\q"}`} {
		if _, _, err := ParseSeriesID(bad); err == nil {
			t.Errorf("ParseSeriesID(%q): want error", bad)
		}
	}
}

func TestInjectLabelCanonicalAndIdempotent(t *testing.T) {
	// Injection keeps canonical sorted order, so federated ids are
	// comparable with native registry ids.
	id, err := InjectLabel(`m{z="1"}`, "a", "w0")
	if err != nil {
		t.Fatal(err)
	}
	if id != `m{a="w0",z="1"}` {
		t.Errorf("injected id = %q, want sorted labels", id)
	}
	// An existing key is preserved, not overwritten: a master's
	// per-worker series keeps its own attribution.
	id2, err := InjectLabel(`m{worker="w3"}`, "worker", "master")
	if err != nil {
		t.Fatal(err)
	}
	if id2 != `m{worker="w3"}` {
		t.Errorf("existing key overwritten: %q", id2)
	}
}

// TestInjectionRoundTripsThroughExposition is the federation pipeline
// end to end: a registry with awkward escaped label values is written
// as Prometheus text, parsed back (the scrape), re-labeled, and every
// id must parse and carry both the original and the injected label.
func TestInjectionRoundTripsThroughExposition(t *testing.T) {
	reg := NewRegistry()
	awkward := `pa"th\with` + "\n" + `everything`
	reg.Counter("reqs_total", L("path", awkward)).Add(7)
	reg.Gauge("depth").Set(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for id, v := range samples {
		nid, err := InjectLabel(id, "worker", "w0")
		if err != nil {
			t.Fatalf("InjectLabel(%q): %v", id, err)
		}
		name, labels, err := ParseSeriesID(nid)
		if err != nil {
			t.Fatalf("re-parse %q: %v", nid, err)
		}
		got := map[string]string{}
		for _, l := range labels {
			got[l.Key] = l.Value
		}
		if got["worker"] != "w0" {
			t.Errorf("%q: missing injected worker label", nid)
		}
		if name == "reqs_total" {
			found++
			if got["path"] != awkward {
				t.Errorf("escaped label value corrupted: %q", got["path"])
			}
			if v != 7 {
				t.Errorf("value = %g, want 7", v)
			}
		}
	}
	if found != 1 {
		t.Fatalf("reqs_total series found %d times, want 1", found)
	}
}

// metricsServer serves a fixed registry as a scrape target.
func metricsServer(t *testing.T, reg *Registry) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func hostPort(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestFederatorMergesWorkersDeterministically(t *testing.T) {
	w0 := NewRegistry()
	w0.Counter("rpcmr_worker_tasks_total", L("kind", "map")).Add(4)
	w1 := NewRegistry()
	w1.Counter("rpcmr_worker_tasks_total", L("kind", "map")).Add(6)
	s0, s1 := metricsServer(t, w0), metricsServer(t, w1)

	self := NewRegistry()
	self.Counter("rpcmr_tasks_done_total").Add(10)

	f := NewFederator(FederatorConfig{
		Self: self,
		Targets: func() []FederationTarget {
			return []FederationTarget{
				{ID: "w0", Addr: hostPort(t, s0)},
				{ID: "w1", Addr: hostPort(t, s1)},
			}
		},
	})
	f.ScrapeOnce(context.Background())
	snap := f.Snapshot()

	if len(snap.Workers) != 3 { // master + 2 workers
		t.Fatalf("members = %d, want 3", len(snap.Workers))
	}
	// Same family from different workers stays distinct after
	// re-labeling...
	k0 := `rpcmr_worker_tasks_total{kind="map",worker="w0"}`
	k1 := `rpcmr_worker_tasks_total{kind="map",worker="w1"}`
	if snap.Merged[k0] != 4 || snap.Merged[k1] != 6 {
		t.Errorf("merged per-worker series = %g/%g, want 4/6 (merged: %v)",
			snap.Merged[k0], snap.Merged[k1], snap.Merged)
	}
	// ...and the master's own series carries the self id.
	if got := snap.Merged[`rpcmr_tasks_done_total{worker="master"}`]; got != 10 {
		t.Errorf("self series = %g, want 10", got)
	}

	// Determinism: scraping again yields the identical merge.
	f.ScrapeOnce(context.Background())
	snap2 := f.Snapshot()
	if len(snap2.Merged) != len(snap.Merged) {
		t.Fatalf("merge size changed across scrapes: %d vs %d", len(snap.Merged), len(snap2.Merged))
	}
	for k, v := range snap.Merged {
		if snap2.Merged[k] != v {
			t.Errorf("merge not deterministic at %q: %g vs %g", k, v, snap2.Merged[k])
		}
	}
}

func TestFederatorDeadWorkerGoesStaleKeepingLastGood(t *testing.T) {
	wreg := NewRegistry()
	wreg.Counter("rpcmr_worker_tasks_total", L("kind", "map")).Add(5)
	srv := metricsServer(t, wreg)
	addr := hostPort(t, srv)

	events := NewEventLog(32)
	var stale atomic.Bool
	f := NewFederator(FederatorConfig{
		Targets: func() []FederationTarget {
			return []FederationTarget{{ID: "w0", Addr: addr, Stale: stale.Load()}}
		},
		Timeout: 500 * time.Millisecond,
		Events:  events,
	})
	f.ScrapeOnce(context.Background())
	snap := f.Snapshot()
	if len(snap.Workers) != 1 || snap.Workers[0].Stale {
		t.Fatalf("live worker snapshot = %+v", snap.Workers)
	}
	key := `rpcmr_worker_tasks_total{kind="map",worker="w0"}`
	if snap.Workers[0].Samples[key] != 5 {
		t.Fatalf("scraped sample = %v", snap.Workers[0].Samples)
	}

	// The worker dies: the server goes away and the health machine marks
	// the target stale. The next scrape must not error out — the member
	// keeps its last-good samples, flagged stale.
	srv.Close()
	stale.Store(true)
	f.ScrapeOnce(context.Background())
	snap = f.Snapshot()
	if len(snap.Workers) != 1 {
		t.Fatalf("members after death = %d, want 1", len(snap.Workers))
	}
	if !snap.Workers[0].Stale {
		t.Error("dead worker not marked stale")
	}
	if snap.Workers[0].Samples[key] != 5 {
		t.Errorf("last-good samples lost: %v", snap.Workers[0].Samples)
	}
	if snap.Merged[key] != 5 {
		t.Errorf("stale member missing from merge: %v", snap.Merged)
	}

	// Unreachable-but-not-declared-dead is the same story, plus one
	// scrape-failure event on the rising edge.
	stale.Store(false)
	f.ScrapeOnce(context.Background())
	f.ScrapeOnce(context.Background())
	snap = f.Snapshot()
	if !snap.Workers[0].Stale || snap.Workers[0].Err == "" {
		t.Errorf("unreachable worker: stale=%v err=%q", snap.Workers[0].Stale, snap.Workers[0].Err)
	}
	fails := 0
	for _, ev := range events.Events(0, 0) {
		if ev.Msg == "federation scrape failed" {
			fails++
		}
	}
	if fails != 1 {
		t.Errorf("scrape-failure events = %d, want 1 (edge-detected)", fails)
	}
}

func TestMountClusterServesAndFilters(t *testing.T) {
	wreg := NewRegistry()
	wreg.Counter("rpcmr_worker_tasks_total", L("kind", "map")).Add(2)
	wreg.Gauge("process_goroutines").Set(9)
	srv := metricsServer(t, wreg)

	f := NewFederator(FederatorConfig{
		Targets: func() []FederationTarget {
			return []FederationTarget{{ID: "w0", Addr: hostPort(t, srv)}}
		},
	})
	f.ScrapeOnce(context.Background())

	mux := http.NewServeMux()
	MountCluster(mux, f)
	api := httptest.NewServer(mux)
	defer api.Close()

	var snap ClusterSnapshot
	resp, err := http.Get(api.URL + ClusterPath + "?series=rpcmr_")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Merged) != 1 {
		t.Fatalf("filtered merge = %v, want only the rpcmr_ series", snap.Merged)
	}
	for _, w := range snap.Workers {
		for id := range w.Samples {
			if !strings.HasPrefix(id, "rpcmr_") {
				t.Errorf("unfiltered member sample %q", id)
			}
		}
	}
}
