package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every series in the Prometheus text format
// (version 0.0.4): families sorted by name with one # TYPE line each,
// histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runHooks()

	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.RUnlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return seriesID(all[i].name, all[i].labels) < seriesID(all[j].name, all[j].labels)
	})

	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range all {
		if s.name != lastFamily {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind)
			lastFamily = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", seriesID(s.name, s.labels), s.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", seriesID(s.name, s.labels), formatFloat(s.gauge.Value()))
		case kindHistogram:
			writeHistogram(bw, s)
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, s *series) {
	snap := s.hist.Snapshot()
	cum := int64(0)
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatFloat(snap.Bounds[i])
		}
		labels := append(append([]Label{}, s.labels...), L("le", le))
		fmt.Fprintf(w, "%s %d\n", seriesID(s.name+"_bucket", labels), cum)
	}
	fmt.Fprintf(w, "%s %s\n", seriesID(s.name+"_sum", s.labels), formatFloat(snap.Sum))
	fmt.Fprintf(w, "%s %d\n", seriesID(s.name+"_count", s.labels), snap.Count)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// FlightRecorderPath is where MountFlightRecorder serves the report.
const FlightRecorderPath = "/debug/flightrecorder"

// MountFlightRecorder serves the current flight record of the job as
// JSON at /debug/flightrecorder. source is called per request and may
// return nil (no job recorded yet → 404), so binaries can swap recorders
// between jobs without re-mounting.
func MountFlightRecorder(mux *http.ServeMux, source func() *Recorder) {
	mux.HandleFunc(FlightRecorderPath, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rec := source()
		if rec == nil {
			http.Error(w, "no flight record", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec.Report())
	})
}

// MountPprof registers the net/http/pprof handlers under /debug/pprof/
// on mux — the one call a binary needs for live profiling.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ParsePrometheus is a minimal parser for the text format this package
// writes — enough for tests and for scraping our own endpoints. It
// returns sample name (labels included, exactly as rendered) → value,
// skipping comment lines.
func ParsePrometheus(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("telemetry: line %d: no value in %q", ln+1, line)
		}
		name, valText := line[:sp], line[sp+1:]
		var v float64
		switch valText {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		default:
			var err error
			v, err = strconv.ParseFloat(valText, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: line %d: bad value %q: %v", ln+1, valText, err)
			}
		}
		out[name] = v
	}
	return out, nil
}
