package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("code", "200"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("requests_total", L("code", "200")) != c {
		t.Error("get-or-create returned a different counter")
	}
	// Label order must not matter.
	g := r.Gauge("queue_depth", L("a", "1"), L("b", "2"))
	if r.Gauge("queue_depth", L("b", "2"), L("a", "1")) != g {
		t.Error("label order changed series identity")
	}
	g.Set(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Errorf("gauge = %v, want 4.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DurationBuckets())
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil metrics must be inert")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	h.Observe(0.05) // bucket 0 (≤0.1)
	h.Observe(0.1)  // bucket 0 (le is inclusive)
	h.Observe(0.5)  // bucket 1
	h.ObserveN(5, 3) // bucket 2 ×3
	h.Observe(100)  // overflow
	s := h.Snapshot()
	want := []int64{2, 1, 3, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-(0.05+0.1+0.5+15+100)) > 1e-9 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{10, 100}).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotAndHooks(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total").Add(2)
	hookRuns := 0
	r.OnScrape(func(r *Registry) {
		hookRuns++
		r.Gauge("sampled").Set(42)
	})
	snap := r.Snapshot()
	if hookRuns != 1 {
		t.Errorf("hook ran %d times", hookRuns)
	}
	if snap.Counters["jobs_total"] != 2 {
		t.Errorf("snapshot counters = %v", snap.Counters)
	}
	if snap.Gauges["sampled"] != 42 {
		t.Errorf("snapshot gauges = %v", snap.Gauges)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", b)
		}
	}
	if len(DurationBuckets()) != 16 {
		t.Errorf("DurationBuckets len = %d", len(DurationBuckets()))
	}
}
