package telemetry

import (
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock advances an SLOTracker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                 { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(t *SLOTracker, c *fakeClock) *SLOTracker { t.now = c.now; return t }

// TestSLOBurnRates: a latency objective's burn rate is the bad fraction
// over the window divided by the budget, short windows react to recent
// behaviour, and the overall achieved/violated figures cover everything.
func TestSLOBurnRates(t *testing.T) {
	clock := newFakeClock()
	var good, bad atomic.Int64
	tr := withClock(NewSLOTracker(SLOConfig{
		Windows:   []time.Duration{time.Minute, 10 * time.Minute},
		AlertBurn: 1.0,
	}), clock)
	tr.AddLatency("query-p99", 0.99, 5*time.Millisecond,
		CounterSLOSource(good.Load, bad.Load))

	// 10 minutes of clean traffic: 1000 req/min, all good.
	for i := 0; i < 10; i++ {
		good.Add(1000)
		clock.advance(time.Minute)
		tr.Tick()
	}
	st := tr.Status()[0]
	if st.Requests != 10000 || st.Bad != 0 || st.Achieved != 1.0 || st.Violated || st.Burning {
		t.Fatalf("clean period status wrong: %+v", st)
	}

	// One bad minute: 10% of requests slow — a 10x burn against the 1%
	// budget on the 1m window.
	good.Add(900)
	bad.Add(100)
	clock.advance(time.Minute)
	tr.Tick()
	st = tr.Status()[0]
	w1 := st.Windows[0]
	if w1.Requests != 1000 || w1.Bad != 100 {
		t.Fatalf("1m window deltas wrong: %+v", w1)
	}
	if math.Abs(w1.BurnRate-10.0) > 1e-9 {
		t.Errorf("1m burn = %v, want 10.0 (10%% bad over 1%% budget)", w1.BurnRate)
	}
	// 10m window: 100 bad of 10000 → bad rate 1% → burn 1.0, NOT above
	// the alert rate, so the multi-window condition holds Burning back.
	w10 := st.Windows[1]
	if math.Abs(w10.BurnRate-1.0) > 1e-9 {
		t.Errorf("10m burn = %v, want 1.0", w10.BurnRate)
	}
	if st.Burning {
		t.Error("burning with only the short window above the alert rate")
	}

	// Sustained badness: after ten more bad minutes both windows burn.
	for i := 0; i < 10; i++ {
		good.Add(900)
		bad.Add(100)
		clock.advance(time.Minute)
		tr.Tick()
	}
	st = tr.Status()[0]
	if !st.Burning {
		t.Errorf("not burning after sustained 10x burn: %+v", st.Windows)
	}
	// Overall: 1100 bad of 21000 ≈ 5.2% bad — the p99 objective is
	// violated outright and more than the whole budget is consumed.
	if !st.Violated || st.BudgetUsed <= 1 {
		t.Errorf("overall violation not reported: achieved=%v budgetUsed=%v", st.Achieved, st.BudgetUsed)
	}
}

// TestSLOBurnEvents: entering the burning state emits one warning, and
// recovery emits one info — transitions, not repeats.
func TestSLOBurnEvents(t *testing.T) {
	clock := newFakeClock()
	events := NewEventLog(64)
	var good, bad atomic.Int64
	tr := withClock(NewSLOTracker(SLOConfig{
		Windows:   []time.Duration{time.Minute},
		AlertBurn: 1.0,
		Events:    events,
	}), clock)
	tr.AddAvailability("availability", 0.99, CounterSLOSource(good.Load, bad.Load))

	count := func(msg string) int {
		n := 0
		for _, ev := range events.Events(0, slog.LevelDebug) {
			if ev.Msg == msg {
				n++
			}
		}
		return n
	}
	// Three burning ticks: one warning only.
	for i := 0; i < 3; i++ {
		good.Add(80)
		bad.Add(20)
		clock.advance(time.Minute)
		tr.Tick()
	}
	if got := count("slo budget burning"); got != 1 {
		t.Errorf("burning warnings = %d, want 1", got)
	}
	// Recovery: clean minutes push the 1m window clean again.
	for i := 0; i < 3; i++ {
		good.Add(100)
		clock.advance(time.Minute)
		tr.Tick()
	}
	if got := count("slo burn recovered"); got != 1 {
		t.Errorf("recovery infos = %d, want 1", got)
	}
}

// TestLatencySLOSource: bucket-boundary accounting — observations at or
// under the threshold bound are good, the rest (overflow included) bad.
func TestLatencySLOSource(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{0.001, 0.005, 0.025})
	h.Observe(0.0005) // ≤ 1ms: good
	h.Observe(0.004)  // ≤ 5ms: good
	h.Observe(0.010)  // ≤ 25ms bucket, above 5ms threshold: bad
	h.Observe(1.0)    // overflow: bad
	s := LatencySLOSource(h, 5*time.Millisecond)()
	if s.Good != 2 || s.Bad != 2 {
		t.Errorf("sample = %+v, want good=2 bad=2", s)
	}
}

// TestQuantileFromSnapshot: interpolation inside the containing bucket,
// overflow clamped to the largest finite bound.
func TestQuantileFromSnapshot(t *testing.T) {
	snap := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{0, 100, 0, 0}, // all samples in (1, 2]
		Count:  100,
	}
	if got := QuantileFromSnapshot(snap, 0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("median = %v, want 1.5 (midpoint of (1,2])", got)
	}
	snap.Counts = []int64{0, 0, 0, 10} // all overflow
	snap.Count = 10
	if got := QuantileFromSnapshot(snap, 0.99); got != 4 {
		t.Errorf("overflow quantile = %v, want 4 (largest bound)", got)
	}
	if got := QuantileFromSnapshot(HistogramSnapshot{}, 0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", got)
	}
}

// TestSLOEndpoint: /debug/slo serves evaluated objectives as JSON and
// 404s when tracking is off.
func TestSLOEndpoint(t *testing.T) {
	var good, bad atomic.Int64
	good.Store(99)
	bad.Store(1)
	tr := NewSLOTracker(SLOConfig{})
	tr.AddAvailability("availability", 0.999, CounterSLOSource(good.Load, bad.Load))
	mux := http.NewServeMux()
	MountSLO(mux, func() *SLOTracker { return tr })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + SLOPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		Objectives []SLOStatus `json:"objectives"`
		Burning    bool        `json:"burning"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Objectives) != 1 {
		t.Fatalf("objectives = %d, want 1", len(doc.Objectives))
	}
	o := doc.Objectives[0]
	if o.Name != "availability" || o.Requests != 100 || o.Bad != 1 || !o.Violated {
		t.Errorf("objective wrong: %+v", o)
	}
	if len(o.Windows) != 3 {
		t.Errorf("default windows = %d, want 3", len(o.Windows))
	}

	mux2 := http.NewServeMux()
	MountSLO(mux2, func() *SLOTracker { return nil })
	srv2 := httptest.NewServer(mux2)
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + SLOPath)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("nil tracker status = %d, want 404", resp2.StatusCode)
	}
}
