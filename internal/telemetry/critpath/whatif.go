package critpath

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// taskInfo is one schedulable task extracted from the trace — the unit
// the what-if model moves between workers.
type taskInfo struct {
	job, phase, worker string
	seconds            float64
	straggler          bool
}

func collectTasks(root *node) []taskInfo {
	var out []taskInfo
	var visit func(n *node)
	visit = func(n *node) {
		if strings.HasSuffix(n.name, "-task") {
			out = append(out, taskInfo{
				job:       n.job,
				phase:     n.phase,
				worker:    n.worker,
				seconds:   n.end - n.start,
				straggler: attrBool(n.attrs, "straggler"),
			})
		}
		for _, k := range n.kids {
			visit(k)
		}
	}
	visit(root)
	return out
}

// lpt is the longest-processing-time list scheduler: sort descending,
// place each task on the least-loaded slot, report the max slot load —
// the standard 4/3-approximation of the optimal phase makespan.
func lpt(durs []float64, slots int) float64 {
	if len(durs) == 0 || slots <= 0 {
		return 0
	}
	sorted := append([]float64(nil), durs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	load := make([]float64, slots)
	for _, d := range sorted {
		min := 0
		for i := 1; i < slots; i++ {
			if load[i] < load[min] {
				min = i
			}
		}
		load[min] += d
	}
	var max float64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// whatIf predicts the makespan under alternative schedules. The model:
// keep every critical segment that is not task work (coordination,
// shuffle, phase dispatch gaps) at its observed cost, and replace the
// task-attributed critical seconds of each (job, phase) group with the
// group's re-scheduled makespan. Groups re-schedule independently
// because the pipeline runs them behind barriers.
func whatIf(a *Analysis, tasks []taskInfo, opts Options) []Scenario {
	if len(tasks) == 0 {
		return nil
	}
	workers := map[string]bool{}
	groups := map[string][]taskInfo{}
	for _, t := range tasks {
		if t.worker != "" {
			workers[t.worker] = true
		}
		groups[t.job+"/"+t.phase] = append(groups[t.job+"/"+t.phase], t)
	}
	w := len(workers)
	if w == 0 {
		return nil
	}

	// Observed task-attributed critical seconds per group.
	obs := map[string]float64{}
	var obsTotal float64
	for _, s := range a.CriticalPath {
		if s.Worker == "" || (s.Phase != PhaseMap && s.Phase != PhaseReduce) {
			continue
		}
		obs[s.Job+"/"+s.Phase] += s.Seconds
		obsTotal += s.Seconds
	}

	base := a.MakespanSeconds
	// predict re-schedules every group with the given slot count and
	// per-task duration override, returning the modelled makespan. A
	// group contributes the *change* against its observed critical task
	// seconds, clamped by the scenario's direction: a speed-up scenario
	// cannot reclaim more than the group's observed critical time (a
	// group that never gated the clock yields nothing when sped up),
	// and a slow-down scenario (fewer workers) cannot go below it.
	predict := func(slots int, dur func(t taskInfo, group []taskInfo) float64, divisible bool) float64 {
		speedup := slots >= w
		total := base - obsTotal
		for key, group := range groups {
			durs := make([]float64, len(group))
			var sum float64
			for i, t := range group {
				durs[i] = dur(t, group)
				sum += durs[i]
			}
			var pred float64
			if divisible {
				pred = sum / float64(slots)
			} else {
				pred = lpt(durs, slots)
			}
			o := obs[key]
			if speedup && pred > o {
				pred = o
			}
			if !speedup && pred < o {
				pred = o
			}
			total += pred
		}
		return math.Max(total, 0)
	}
	identity := func(t taskInfo, _ []taskInfo) float64 { return t.seconds }

	// The no-straggler scenario removes the flagged straggler *worker*:
	// every task it ran is pulled back to the healthy pack's median.
	// Worker-level (not task-level) because the master's detector needs
	// >= 3 same-phase samples — a stalled worker that drew a one-task
	// phase (the merge job) is invisible to it, but its partition-job
	// tasks already identified the machine.
	stragglerWorkers := map[string]bool{}
	var stragglers int
	for _, t := range tasks {
		if t.straggler {
			stragglers++
			if t.worker != "" {
				stragglerWorkers[t.worker] = true
			}
		}
	}
	healthyMedian := func(pool []taskInfo, phase string, byPhase bool) (float64, bool) {
		var rest []float64
		for _, o := range pool {
			if !o.straggler && !stragglerWorkers[o.worker] && (!byPhase || o.phase == phase) {
				rest = append(rest, o.seconds)
			}
		}
		if len(rest) == 0 {
			return 0, false
		}
		sort.Float64s(rest)
		if len(rest)%2 == 1 {
			return rest[len(rest)/2], true
		}
		return (rest[len(rest)/2-1] + rest[len(rest)/2]) / 2, true
	}
	despeckled := func(t taskInfo, group []taskInfo) float64 {
		if !t.straggler && !stragglerWorkers[t.worker] {
			return t.seconds
		}
		// Reference: healthy tasks in the same group; else the same
		// phase across jobs (a one-task group has no healthy peers).
		if m, ok := healthyMedian(group, "", false); ok {
			return m
		}
		if m, ok := healthyMedian(tasks, t.phase, true); ok {
			return m
		}
		return t.seconds
	}

	var out []Scenario
	add := func(name string, pred float64, detail string) {
		s := Scenario{Name: name, PredictedSeconds: pred, Detail: detail}
		if pred > 0 {
			s.SpeedupX = base / pred
		}
		out = append(out, s)
	}
	add("perfect-balance", predict(w, identity, true),
		fmt.Sprintf("Eq. (5)-perfect split of %.3g task-seconds of work over %d workers", taskSum(tasks), w))
	for _, dk := range opts.DeltaWorkers {
		slots := w + dk
		if slots < 1 || slots == w {
			continue
		}
		add(fmt.Sprintf("workers%+d", dk), predict(slots, identity, false),
			fmt.Sprintf("LPT re-schedule of %d tasks onto %d workers", len(tasks), slots))
	}
	if stragglers > 0 {
		add("no-straggler", predict(w, despeckled, false),
			fmt.Sprintf("%d straggler task(s) pulled back to the phase median", stragglers))
	}
	return out
}

func taskSum(tasks []taskInfo) float64 {
	var s float64
	for _, t := range tasks {
		s += t.seconds
	}
	return s
}

// skewCheck cross-references flight-recorder partition skew with the
// trace's per-worker busy-time skew. Nil when neither side has data.
func skewCheck(rep *telemetry.Report, tasks []taskInfo, scenarios []Scenario) *SkewCheck {
	busy := map[string]float64{}
	for _, t := range tasks {
		if t.worker != "" {
			busy[t.worker] += t.seconds
		}
	}
	var c SkewCheck
	if len(busy) > 0 {
		var max, sum float64
		for _, b := range busy {
			sum += b
			if b > max {
				max = b
			}
		}
		if mean := sum / float64(len(busy)); mean > 0 {
			c.WorkerBusyImbalance = max / mean
		}
	}
	if rep != nil {
		c.FlightImbalance = rep.Skew.Imbalance
		c.FlightGini = rep.Skew.Gini
	}
	if c.FlightImbalance == 0 && c.WorkerBusyImbalance == 0 {
		return nil
	}
	// The two imbalances come from independent evidence (shuffle-volume
	// accounting vs worker task spans); agreeing on which side of the
	// 1.25× line they fall is the cross-check.
	const line = 1.25
	c.Consistent = (c.FlightImbalance >= line) == (c.WorkerBusyImbalance >= line) ||
		c.FlightImbalance == 0 || c.WorkerBusyImbalance == 0
	switch {
	case !c.Consistent && c.WorkerBusyImbalance >= line:
		c.Note = "workers are imbalanced but partition loads are not: suspect a straggling worker, not the partitioning"
	case !c.Consistent:
		c.Note = "partition loads are skewed but worker busy time is not: the schedule absorbed the skew"
	case c.FlightImbalance >= line:
		c.Note = "partition-load skew confirmed on the critical path: rebalancing should pay (see perfect-balance)"
	default:
		c.Note = "partition loads and worker busy time agree: balanced"
	}
	return &c
}
