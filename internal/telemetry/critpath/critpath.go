// Package critpath turns a stitched span trace (telemetry.Tracer with
// worker spans grafted in by Import) into an answer to the question the
// raw trace only hints at: where did the makespan go, and what would a
// different plan have bought?
//
// The analyzer walks the span tree backwards from the root's end — at
// every instant the *last finisher* among the overlapping children is
// the span the clock was waiting on — and partitions the whole makespan
// into critical segments, each blamed on one span (or on the gap
// between a span and its children: coordination). Segments roll up into
// per-phase, per-worker and per-partition blame, near-critical spans
// get a slack figure (how much longer they could have run for free),
// and a small scheduling model predicts the makespan under Eq. (5)-
// perfect partition balance, under ±k workers, and with the flagged
// stragglers brought back to the pack — the analysis step the paper's
// tuning loop (and ROADMAP item 1) needs as input. The flight
// recorder's skew rollups ride along as a cross-check: partition-load
// imbalance and critical-path worker imbalance should tell one story.
package critpath

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Phase labels. Every critical segment lands in exactly one, so the
// per-phase blame sums to the makespan by construction.
const (
	PhaseMap        = "map"
	PhaseShuffle    = "shuffle"
	PhaseReduce     = "reduce"
	PhaseCoordinate = "coordinate"
)

// Segment is one slice of the critical path: from Start (seconds after
// the root span began) the job spent Seconds waiting on Span. Gap marks
// coordination time — the blamed span was running but none of its
// children were, so the time went to dispatch, barriers, or the span's
// own serial work.
type Segment struct {
	Span    string  `json:"span"`
	Phase   string  `json:"phase"`
	Job     string  `json:"job,omitempty"`
	Worker  string  `json:"worker,omitempty"`
	Task    int     `json:"task,omitempty"`
	Start   float64 `json:"start_seconds"`
	Seconds float64 `json:"seconds"`
	Gap     bool    `json:"gap,omitempty"`
}

// PhaseBlame is one phase's share of the critical path.
type PhaseBlame struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// WorkerBlame is one worker's share of the critical path (only task
// time attributes to workers; coordination and phase gaps do not).
type WorkerBlame struct {
	Worker    string  `json:"worker"`
	Seconds   float64 `json:"seconds"`
	Share     float64 `json:"share"`
	Straggler bool    `json:"straggler,omitempty"`
}

// PartitionBlame apportions the reduce phase's critical seconds over
// data partitions proportionally to their recorded load — the bridge
// from "the reduce phase was slow" to "these angular sectors made it
// slow", which is what a re-partitioning decision needs.
type PartitionBlame struct {
	Partition int     `json:"partition"`
	Load      int64   `json:"load"`
	Seconds   float64 `json:"seconds"`
	Share     float64 `json:"share"`
}

// SlackEntry is a near-critical span: it could have run SlackSeconds
// longer without moving the makespan. Small slack marks the next
// bottleneck once the current one is fixed.
type SlackEntry struct {
	Span         string  `json:"span"`
	Worker       string  `json:"worker,omitempty"`
	Task         int     `json:"task,omitempty"`
	SlackSeconds float64 `json:"slack_seconds"`
}

// Scenario is one what-if prediction from the scheduling model.
type Scenario struct {
	Name             string  `json:"name"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	SpeedupX         float64 `json:"speedup_x"`
	Detail           string  `json:"detail,omitempty"`
}

// SkewCheck cross-references the flight recorder's partition-load skew
// against the trace's per-worker busy-time skew. The two are computed
// from independent evidence (shuffle accounting vs task spans); when
// both are high the load imbalance is real and balance would pay, when
// they disagree the bottleneck is elsewhere (straggling hardware, few
// tasks, coordination).
type SkewCheck struct {
	FlightImbalance     float64 `json:"flight_imbalance,omitempty"`
	FlightGini          float64 `json:"flight_gini,omitempty"`
	WorkerBusyImbalance float64 `json:"worker_busy_imbalance,omitempty"`
	Consistent          bool    `json:"consistent"`
	Note                string  `json:"note,omitempty"`
}

// Analysis is the full critical-path report served at /debug/critpath.
type Analysis struct {
	Job             string           `json:"job"`
	Start           time.Time        `json:"start"`
	MakespanSeconds float64          `json:"makespan_seconds"`
	CriticalPath    []Segment        `json:"critical_path"`
	Phases          []PhaseBlame     `json:"phases"`
	Workers         []WorkerBlame    `json:"workers,omitempty"`
	Partitions      []PartitionBlame `json:"partitions,omitempty"`
	Slack           []SlackEntry     `json:"slack,omitempty"`
	WhatIf          []Scenario       `json:"whatif,omitempty"`
	SkewCheck       *SkewCheck       `json:"skew_check,omitempty"`
}

// Options tunes the analysis.
type Options struct {
	// DeltaWorkers lists the ±k worker-count scenarios to model
	// (default {-1, +1}).
	DeltaWorkers []int
	// TopSlack bounds the slack list (default 8).
	TopSlack int
}

// eps is the containment / walk tolerance in seconds — just enough to
// absorb float noise and the sub-RPC jitter of receipt-anchored
// timestamps without swallowing real micro-phases (in-process runs
// finish in milliseconds).
const eps = 1e-6

type node struct {
	id         uint64
	name       string
	track      int
	start, end float64
	attrs      []telemetry.Attr
	kids       []*node

	phase  string // cached nearest ancestor-or-self phase
	job    string // cached nearest ancestor-or-self job name
	worker string // cached worker attribution
}

// Analyze computes the critical-path report for one trace. rep (the
// flight record) is optional: without it partition blame and the flight
// side of the skew check are omitted. It returns an error only when the
// trace has no usable root span.
func Analyze(spans []telemetry.SpanData, rep *telemetry.Report, opts Options) (*Analysis, error) {
	root, epoch, err := buildTree(spans)
	if err != nil {
		return nil, err
	}
	if opts.TopSlack == 0 {
		opts.TopSlack = 8
	}
	if opts.DeltaWorkers == nil {
		opts.DeltaWorkers = []int{-1, 1}
	}

	a := &analyzer{slack: make(map[*node]float64)}
	annotate(root, "", "")
	a.walk(root, root.start, root.end)
	sort.Slice(a.segs, func(i, j int) bool { return a.segs[i].start < a.segs[j].start })

	out := &Analysis{
		Job:             root.name,
		Start:           epoch.Add(time.Duration(root.start * float64(time.Second))),
		MakespanSeconds: root.end - root.start,
	}
	for _, s := range a.segs {
		out.CriticalPath = append(out.CriticalPath, Segment{
			Span:    s.on.name,
			Phase:   phaseOr(s.on.phase, PhaseCoordinate),
			Job:     s.on.job,
			Worker:  s.on.worker,
			Task:    attrInt(s.on.attrs, "task"),
			Start:   s.start - root.start,
			Seconds: s.end - s.start,
			Gap:     s.gap,
		})
	}

	out.Phases = phaseBlame(out.CriticalPath, out.MakespanSeconds)
	out.Workers = workerBlame(out.CriticalPath, out.MakespanSeconds, a.segs)
	out.Partitions = partitionBlame(out.Phases, rep)
	out.Slack = slackList(a.slack, opts.TopSlack)
	tasks := collectTasks(root)
	out.WhatIf = whatIf(out, tasks, opts)
	out.SkewCheck = skewCheck(rep, tasks, out.WhatIf)
	return out, nil
}

// buildTree indexes the spans, picks the root (the longest span without
// a parent in the set), and adopts task spans under the phase span that
// temporally contains them: the rpcmr master records the map/shuffle/
// reduce phase spans post hoc as *siblings* of the imported task spans,
// and the walk needs them nested to blame both the phase and the
// worker.
func buildTree(spans []telemetry.SpanData) (*node, time.Time, error) {
	if len(spans) == 0 {
		return nil, time.Time{}, fmt.Errorf("critpath: empty trace")
	}
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	byID := make(map[uint64]*node, len(spans))
	nodes := make([]*node, 0, len(spans))
	for _, s := range spans {
		start := s.Start.Sub(epoch).Seconds()
		n := &node{
			id:    s.ID,
			name:  s.Name,
			track: s.Track,
			start: start,
			end:   start + s.Duration.Seconds(),
			attrs: s.Attrs,
		}
		byID[s.ID] = n
		nodes = append(nodes, n)
	}
	var root *node
	for i, s := range spans {
		n := nodes[i]
		if p, ok := byID[s.Parent]; ok && s.Parent != s.ID {
			p.kids = append(p.kids, n)
		} else if root == nil || n.end-n.start > root.end-root.start {
			root = n
		}
	}
	if root == nil || root.end <= root.start {
		return nil, time.Time{}, fmt.Errorf("critpath: no root span with positive duration")
	}
	adoptUnderPhases(root)
	return root, epoch, nil
}

// adoptUnderPhases re-parents, at every level, non-phase children under
// the narrowest phase sibling ("map"/"shuffle"/"reduce") that
// temporally contains them.
func adoptUnderPhases(n *node) {
	var phases []*node
	for _, k := range n.kids {
		if k.name == PhaseMap || k.name == PhaseShuffle || k.name == PhaseReduce {
			phases = append(phases, k)
		}
	}
	if len(phases) > 0 {
		kept := n.kids[:0]
		for _, k := range n.kids {
			var host *node
			if k.name != PhaseMap && k.name != PhaseShuffle && k.name != PhaseReduce {
				for _, f := range phases {
					if k.start >= f.start-eps && k.end <= f.end+eps {
						if host == nil || f.end-f.start < host.end-host.start {
							host = f
						}
					}
				}
			}
			if host != nil {
				host.kids = append(host.kids, k)
			} else {
				kept = append(kept, k)
			}
		}
		n.kids = kept
	}
	for _, k := range n.kids {
		adoptUnderPhases(k)
	}
}

// classify maps a span name to its phase ("" when the name implies
// none).
func classify(name string) string {
	switch name {
	case PhaseMap, "map-task":
		return PhaseMap
	case PhaseReduce, "reduce-task":
		return PhaseReduce
	case PhaseShuffle:
		return PhaseShuffle
	}
	return ""
}

// annotate caches phase/job/worker attribution down the tree.
func annotate(n *node, phase, job string) {
	if p := classify(n.name); p != "" {
		phase = p
	}
	for _, prefix := range []string{"rpcmr-job:", "mr-job:"} {
		if strings.HasPrefix(n.name, prefix) {
			job = strings.TrimPrefix(n.name, prefix)
		}
	}
	n.phase, n.job = phase, job
	if w := attrString(n.attrs, "worker"); w != "" {
		n.worker = w
	} else if strings.HasSuffix(n.name, "-task") && n.track > 0 {
		// In-process engines pin task spans to per-slot tracks but
		// carry no worker identity; name the slot so blame still lands
		// somewhere actionable.
		n.worker = fmt.Sprintf("slot %d", n.track)
	}
	for _, k := range n.kids {
		annotate(k, phase, job)
	}
}

type segment struct {
	on         *node
	start, end float64
	gap        bool
}

type analyzer struct {
	segs  []segment
	slack map[*node]float64
}

// walk attributes the window (lo, hi] inside span n. Backwards from hi:
// the child with the latest (clamped) end is what the clock was waiting
// on; any daylight between that child's end and the cursor is n's own
// coordination time; then the walk descends into the child and resumes
// from the child's start. Every emitted segment is disjoint and the
// union is exactly (lo, hi], so blame sums to the makespan.
func (a *analyzer) walk(n *node, lo, hi float64) {
	t := hi
	for t-lo > eps {
		var best *node
		bestEnd := math.Inf(-1)
		for _, c := range n.kids {
			if c.start >= t-eps {
				continue // starts at/after the cursor: not what we waited on
			}
			e := math.Min(c.end, t)
			if e <= lo+eps {
				continue // no overlap with the remaining window
			}
			if e > bestEnd {
				bestEnd, best = e, c
			}
		}
		if best == nil {
			a.emit(n, lo, t, len(n.kids) > 0)
			return
		}
		// Non-chosen candidates could have run until bestEnd for free.
		for _, c := range n.kids {
			if c == best || c.start >= t-eps {
				continue
			}
			if e := math.Min(c.end, t); e > lo+eps && bestEnd-e > 0 {
				if cur, ok := a.slack[c]; !ok || bestEnd-e < cur {
					a.slack[c] = bestEnd - e
				}
			}
		}
		if t-bestEnd > eps {
			a.emit(n, bestEnd, t, true)
		}
		clo := math.Max(best.start, lo)
		a.walk(best, clo, bestEnd)
		delete(a.slack, best) // critical (for this window): no slack
		t = clo
	}
}

func (a *analyzer) emit(n *node, lo, hi float64, gap bool) {
	if hi-lo <= 0 {
		return
	}
	a.segs = append(a.segs, segment{on: n, start: lo, end: hi, gap: gap})
}

func phaseOr(p, fallback string) string {
	if p == "" {
		return fallback
	}
	return p
}

func phaseBlame(segs []Segment, makespan float64) []PhaseBlame {
	by := map[string]float64{}
	for _, s := range segs {
		by[s.Phase] += s.Seconds
	}
	var out []PhaseBlame
	for _, p := range []string{PhaseMap, PhaseShuffle, PhaseReduce, PhaseCoordinate} {
		if sec, ok := by[p]; ok {
			out = append(out, PhaseBlame{Phase: p, Seconds: sec, Share: share(sec, makespan)})
		}
	}
	return out
}

func workerBlame(segs []Segment, makespan float64, raw []segment) []WorkerBlame {
	secs := map[string]float64{}
	strag := map[string]bool{}
	for i, s := range segs {
		if s.Worker == "" {
			continue
		}
		secs[s.Worker] += s.Seconds
		if attrBool(raw[i].on.attrs, "straggler") {
			strag[s.Worker] = true
		}
	}
	out := make([]WorkerBlame, 0, len(secs))
	for w, sec := range secs {
		out = append(out, WorkerBlame{Worker: w, Seconds: sec, Share: share(sec, makespan), Straggler: strag[w]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// partitionBlame spreads the reduce phase's critical seconds over the
// flight record's partitions proportionally to load. Model-based, not
// measured: rpcmr reduce tasks process one partition group each, so
// load share is the best stand-in short of per-partition reduce spans.
func partitionBlame(phases []PhaseBlame, rep *telemetry.Report) []PartitionBlame {
	if rep == nil || len(rep.Partitions) == 0 {
		return nil
	}
	var reduceSec float64
	for _, p := range phases {
		if p.Phase == PhaseReduce {
			reduceSec = p.Seconds
		}
	}
	var total float64
	loads := make([]int64, len(rep.Partitions))
	for i, p := range rep.Partitions {
		l := p.InputRecords
		if l == 0 {
			l = int64(p.LocalSkyline)
		}
		loads[i] = l
		total += float64(l)
	}
	if total == 0 || reduceSec == 0 {
		return nil
	}
	out := make([]PartitionBlame, len(rep.Partitions))
	for i, p := range rep.Partitions {
		sec := reduceSec * float64(loads[i]) / total
		out[i] = PartitionBlame{Partition: p.Partition, Load: loads[i], Seconds: sec, Share: share(sec, reduceSec)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

func slackList(slack map[*node]float64, top int) []SlackEntry {
	out := make([]SlackEntry, 0, len(slack))
	for n, s := range slack {
		out = append(out, SlackEntry{Span: n.name, Worker: n.worker, Task: attrInt(n.attrs, "task"), SlackSeconds: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SlackSeconds < out[j].SlackSeconds })
	if len(out) > top {
		out = out[:top]
	}
	return out
}

func share(v, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return v / total
}

func attrString(attrs []telemetry.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			if s, ok := a.Value.(string); ok {
				return s
			}
		}
	}
	return ""
}

func attrInt(attrs []telemetry.Attr, key string) int {
	for _, a := range attrs {
		if a.Key == key {
			switch v := a.Value.(type) {
			case int:
				return v
			case int64:
				return int(v)
			case float64:
				return int(v)
			}
		}
	}
	return 0
}

func attrBool(attrs []telemetry.Attr, key string) bool {
	for _, a := range attrs {
		if a.Key == key {
			if b, ok := a.Value.(bool); ok {
				return b
			}
		}
	}
	return false
}
