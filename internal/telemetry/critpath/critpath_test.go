package critpath

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/telemetry"
)

var testEpoch = time.Unix(1700000000, 0)

func span(id, parent uint64, name string, start, dur float64, attrs ...telemetry.Attr) telemetry.SpanData {
	return telemetry.SpanData{
		ID:       id,
		Parent:   parent,
		Name:     name,
		Start:    testEpoch.Add(time.Duration(start * float64(time.Second))),
		Duration: time.Duration(dur * float64(time.Second)),
		Attrs:    attrs,
	}
}

// checkInvariants asserts the properties that must hold for *any* span
// tree: the critical path partitions the makespan (segments disjoint,
// in order, summing to the root duration), phase blame re-sums it, and
// the makespan bounds every single span and is bounded by the sum of
// all spans.
func checkInvariants(t *testing.T, spans []telemetry.SpanData) *Analysis {
	t.Helper()
	a, err := Analyze(spans, nil, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	tol := eps*float64(len(spans)+5) + 1e-6
	var sum, maxDur, allDur float64
	for _, s := range spans {
		d := s.Duration.Seconds()
		allDur += d
		if d > maxDur {
			maxDur = d
		}
	}
	prevEnd := -tol
	for i, seg := range a.CriticalPath {
		if seg.Seconds < 0 {
			t.Fatalf("segment %d has negative duration %g", i, seg.Seconds)
		}
		if seg.Start < prevEnd-tol {
			t.Fatalf("segment %d (start %g) overlaps previous end %g", i, seg.Start, prevEnd)
		}
		if seg.Start+seg.Seconds > a.MakespanSeconds+tol {
			t.Fatalf("segment %d runs past the makespan: %g+%g > %g", i, seg.Start, seg.Seconds, a.MakespanSeconds)
		}
		prevEnd = seg.Start + seg.Seconds
		sum += seg.Seconds
	}
	if math.Abs(sum-a.MakespanSeconds) > tol {
		t.Fatalf("critical path sums to %g, want makespan %g (±%g)", sum, a.MakespanSeconds, tol)
	}
	var phaseSum float64
	for _, p := range a.Phases {
		phaseSum += p.Seconds
	}
	if math.Abs(phaseSum-a.MakespanSeconds) > tol {
		t.Fatalf("phase blame sums to %g, want makespan %g", phaseSum, a.MakespanSeconds)
	}
	if a.MakespanSeconds < maxDur-tol {
		t.Fatalf("makespan %g below the longest span %g", a.MakespanSeconds, maxDur)
	}
	if a.MakespanSeconds > allDur+tol {
		t.Fatalf("makespan %g above the sum of all spans %g", a.MakespanSeconds, allDur)
	}
	return a
}

// randomTrace grows a random span tree under one root: children nest
// inside their parent's interval, overlap freely, and draw names that
// exercise the phase classifier and the task-adoption pass.
func randomTrace(r *rand.Rand) []telemetry.SpanData {
	names := []string{"map", "shuffle", "reduce", "map-task", "reduce-task", "stage", "rpcmr-job:random"}
	var spans []telemetry.SpanData
	nextID := uint64(1)
	rootDur := 1 + r.Float64()*9
	spans = append(spans, span(nextID, 0, "skyline:random", 0, rootDur))
	var grow func(parent uint64, lo, hi float64, depth int)
	grow = func(parent uint64, lo, hi float64, depth int) {
		if depth > 3 || hi-lo < 0.05 {
			return
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			a := lo + r.Float64()*(hi-lo)
			b := a + r.Float64()*(hi-a)
			if b-a < 0.01 {
				continue
			}
			nextID++
			id := nextID
			attrs := []telemetry.Attr{telemetry.A("task", i)}
			if r.Intn(3) == 0 {
				attrs = append(attrs, telemetry.A("worker", fmt.Sprintf("w%d", r.Intn(3))))
			}
			spans = append(spans, span(id, parent, names[r.Intn(len(names))], a, b-a, attrs...))
			grow(id, a, b, depth+1)
		}
	}
	grow(1, 0, rootDur, 0)
	return spans
}

func TestAnalyzeRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		spans := randomTrace(r)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkInvariants(t, spans)
		})
	}
}

func FuzzAnalyze(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		spans := randomTrace(rand.New(rand.NewSource(seed)))
		checkInvariants(t, spans)
	})
}

// A serial chain of children with no daylight between them: the
// critical path is exactly the chain, gap-free, and equals the
// makespan.
func TestAnalyzeSerialChain(t *testing.T) {
	spans := []telemetry.SpanData{
		span(1, 0, "skyline:serial", 0, 3),
		span(2, 1, "stage-a", 0, 1),
		span(3, 1, "stage-b", 1, 1),
		span(4, 1, "stage-c", 2, 1),
	}
	a := checkInvariants(t, spans)
	if len(a.CriticalPath) != 3 {
		t.Fatalf("serial chain: got %d segments, want 3: %+v", len(a.CriticalPath), a.CriticalPath)
	}
	var sum float64
	for _, seg := range a.CriticalPath {
		if seg.Gap {
			t.Fatalf("serial chain produced a gap segment: %+v", seg)
		}
		sum += seg.Seconds
	}
	if math.Abs(sum-3) > 0.01 {
		t.Fatalf("serial chain critical path %g, want 3", sum)
	}
	if len(a.Phases) != 1 || a.Phases[0].Phase != PhaseCoordinate {
		t.Fatalf("unclassified chain should blame coordinate, got %+v", a.Phases)
	}
}

// The deterministic straggler scenario: an rpcmr-shaped trace (phase
// span and task spans as siblings under the job span, as the master
// records them) where worker w2's map task carries a 2s injected delay.
// The analyzer must attribute at least that delay to w2 and the
// no-straggler what-if must predict the run without it.
func TestAnalyzeStragglerAttribution(t *testing.T) {
	spans := []telemetry.SpanData{
		span(1, 0, "skyline:test", 0, 3),
		span(2, 1, "rpcmr-job:partition", 0, 2.9),
		span(3, 2, "map", 0.05, 2.7),
		span(4, 2, "map-task", 0.1, 0.5, telemetry.A("worker", "w0"), telemetry.A("task", 0)),
		span(5, 2, "map-task", 0.1, 0.6, telemetry.A("worker", "w1"), telemetry.A("task", 1)),
		span(6, 2, "map-task", 0.1, 2.6, telemetry.A("worker", "w2"), telemetry.A("task", 2),
			telemetry.A("straggler", true)),
	}
	a := checkInvariants(t, spans)

	var w2 *WorkerBlame
	for i := range a.Workers {
		if a.Workers[i].Worker == "w2" {
			w2 = &a.Workers[i]
		}
	}
	if w2 == nil {
		t.Fatalf("no blame for w2: %+v", a.Workers)
	}
	if w2.Seconds < 2.0 {
		t.Fatalf("w2 blamed for %.3fs, want at least the 2s injected delay", w2.Seconds)
	}
	if !w2.Straggler {
		t.Fatalf("w2 not flagged as straggler: %+v", w2)
	}
	if a.Workers[0].Worker != "w2" {
		t.Fatalf("top blame should be w2, got %+v", a.Workers[0])
	}

	// Phase blame: the map phase owns the task time plus its dispatch
	// gaps; everything outside the phase span is coordination.
	byPhase := map[string]float64{}
	for _, p := range a.Phases {
		byPhase[p.Phase] = p.Seconds
	}
	if byPhase[PhaseMap] < 2.6 {
		t.Fatalf("map phase blamed for %.3fs, want >= 2.6", byPhase[PhaseMap])
	}

	// What-if: pulling the straggler back to the pack median (0.6s)
	// should predict 3.0 - 2.6 + 0.6 = 1.0s.
	var noStrag *Scenario
	for i := range a.WhatIf {
		if a.WhatIf[i].Name == "no-straggler" {
			noStrag = &a.WhatIf[i]
		}
	}
	if noStrag == nil {
		t.Fatalf("no no-straggler scenario: %+v", a.WhatIf)
	}
	if math.Abs(noStrag.PredictedSeconds-1.0) > 0.05 {
		t.Fatalf("no-straggler predicted %.3fs, want ~1.0s", noStrag.PredictedSeconds)
	}
	if noStrag.SpeedupX < 2.5 {
		t.Fatalf("no-straggler speedup %.2fx, want ~3x", noStrag.SpeedupX)
	}
}

// Slack: of two parallel children the shorter one could have run until
// the longer finished.
func TestAnalyzeSlack(t *testing.T) {
	spans := []telemetry.SpanData{
		span(1, 0, "skyline:slack", 0, 2),
		span(2, 1, "long", 0, 2),
		span(3, 1, "short", 0, 1.5),
	}
	a := checkInvariants(t, spans)
	if len(a.Slack) != 1 || a.Slack[0].Span != "short" {
		t.Fatalf("want one slack entry for 'short', got %+v", a.Slack)
	}
	if math.Abs(a.Slack[0].SlackSeconds-0.5) > 0.01 {
		t.Fatalf("slack %.3fs, want 0.5", a.Slack[0].SlackSeconds)
	}
}

// Partition blame spreads reduce-phase critical seconds by load.
func TestPartitionBlame(t *testing.T) {
	spans := []telemetry.SpanData{
		span(1, 0, "skyline:part", 0, 2),
		span(2, 1, "rpcmr-job:merge", 0, 2),
		span(3, 2, "reduce", 0, 2),
		span(4, 2, "reduce-task", 0, 2, telemetry.A("worker", "w0")),
	}
	rep := &telemetry.Report{Partitions: []telemetry.PartitionRecord{
		{Partition: 0, InputRecords: 300},
		{Partition: 1, InputRecords: 100},
	}}
	a, err := Analyze(spans, rep, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.Partitions) != 2 {
		t.Fatalf("want 2 partition blames, got %+v", a.Partitions)
	}
	if a.Partitions[0].Partition != 0 || math.Abs(a.Partitions[0].Seconds-1.5) > 0.01 {
		t.Fatalf("partition 0 should absorb 3/4 of 2s reduce time, got %+v", a.Partitions[0])
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil, nil, Options{}); err == nil {
		t.Fatal("want error on empty trace")
	}
}
