package critpath

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// Path is where Mount serves the critical-path analysis.
const Path = "/debug/critpath"

// Mount serves the analysis as indented JSON at Path. The source is
// re-evaluated per request (a running job re-analyzes its partial
// trace); a nil result is a 404, so dashboards probing an engine
// without tracing degrade cleanly.
func Mount(mux *http.ServeMux, source func() *Analysis) {
	mux.HandleFunc(Path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		a := source()
		if a == nil {
			http.Error(w, "critical-path analysis not available", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a)
	})
}

// Summarize flattens an analysis (and the flight record it was checked
// against) into the telemetry.RunSummary shape the run history stores —
// flat fields only, so the history file stays greppable and the
// telemetry package needs no knowledge of this one.
func Summarize(a *Analysis, rep *telemetry.Report, label string) telemetry.RunSummary {
	s := telemetry.RunSummary{
		Time:            time.Now(),
		Job:             a.Job,
		Label:           label,
		MakespanSeconds: a.MakespanSeconds,
		PhaseSeconds:    map[string]float64{},
	}
	var top PhaseBlame
	for _, p := range a.Phases {
		s.PhaseSeconds[p.Phase] = p.Seconds
		if p.Seconds > top.Seconds {
			top = p
		}
	}
	s.BottleneckPhase = top.Phase
	if len(a.Workers) > 0 {
		s.BottleneckWorker = a.Workers[0].Worker
	}
	for _, w := range a.WhatIf {
		if w.Name == "perfect-balance" {
			s.PredictedBalancedSeconds = w.PredictedSeconds
		}
	}
	if rep != nil {
		s.Imbalance = rep.Skew.Imbalance
		s.Gini = rep.Skew.Gini
		s.Optimality = rep.Optimality
		s.Stragglers = rep.Stragglers
		s.GlobalSkyline = rep.GlobalSkyline
	}
	return s
}
