package telemetry

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The flight recorder assembles, for one skyline job, the per-partition
// and per-task evidence the paper's evaluation reads off-line — partition
// load (Figure 8's skew picture), local skyline sizes, shuffle volume,
// task wall times, and the Eq. (5) local-optimality ratio (Figure 7) —
// and rolls them up into skew and straggler signals a live cluster can
// alert on. Like the rest of the package it is off by default: a nil
// *Recorder no-ops on every method, and producers find the recorder via
// the context (WithRecorder / RecorderFrom), so library code pays one
// context lookup when recording is off.

// PartitionRecord is one partition's flight-record entry.
type PartitionRecord struct {
	// Partition is the data-space partition id (the paper's angular
	// sector, grid cell, or dimensional slice).
	Partition int `json:"partition"`
	// InputRecords counts the points routed to this partition by the map
	// phase (pre-combine) — the partition's load in the Figure 8 sense.
	InputRecords int64 `json:"input_records"`
	// ShuffleBytes counts the sealed frame payload bytes this partition
	// contributed to the shuffle (0 on the classic per-pair transport).
	ShuffleBytes int64 `json:"shuffle_bytes"`
	// LocalSkyline is the partition's local skyline size (job-1 output).
	LocalSkyline int `json:"local_skyline"`
	// GlobalSurvivors counts local skyline points that are also in the
	// global skyline — the numerator of the paper's Eq. (5) ratio.
	GlobalSurvivors int `json:"global_survivors"`
	// Optimality is GlobalSurvivors / LocalSkyline (0 when the local
	// skyline is empty): the paper's per-partition local optimality.
	Optimality float64 `json:"optimality"`
}

// TaskRecord is one completed cluster task, as observed by the rpcmr
// master (or any other engine that reports task completions).
type TaskRecord struct {
	Job     string `json:"job"`
	Kind    string `json:"kind"` // "map" or "reduce"
	Task    int    `json:"task"`
	Attempt int    `json:"attempt"`
	Worker  string `json:"worker,omitempty"`
	// Seconds is the task's wall time on its successful attempt.
	Seconds float64 `json:"seconds"`
	// Straggler marks a task whose duration exceeded the straggler
	// threshold (see rpcmr.MasterConfig.StragglerFactor).
	Straggler bool `json:"straggler,omitempty"`
}

// Skew summarizes partition load imbalance — the operational signal
// behind the paper's claim that angular partitioning balances load where
// grid and dimensional partitioning skew badly.
type Skew struct {
	// MaxLoad and MeanLoad are over per-partition loads (InputRecords
	// when known, falling back to local skyline sizes).
	MaxLoad  int64   `json:"max_load"`
	MeanLoad float64 `json:"mean_load"`
	// Imbalance is MaxLoad / MeanLoad; 1.0 is perfectly balanced.
	Imbalance float64 `json:"imbalance"`
	// Gini is the Gini coefficient of the load distribution: 0 for equal
	// loads, approaching 1 as one partition takes everything.
	Gini float64 `json:"gini"`
}

// Report is the serializable flight record of one skyline job.
type Report struct {
	Job             string            `json:"job"`
	Start           time.Time         `json:"start"`
	DurationSeconds float64           `json:"duration_seconds"`
	Partitions      []PartitionRecord `json:"partitions"`
	Tasks           []TaskRecord      `json:"tasks,omitempty"`
	Skew            Skew              `json:"skew"`
	// Optimality is the paper's Eq. (5): the mean, over partitions with a
	// non-empty local skyline, of the per-partition optimality ratio.
	Optimality    float64 `json:"optimality"`
	GlobalSkyline int     `json:"global_skyline"`
	// Stragglers counts tasks flagged by the master's straggler detector.
	Stragglers int64 `json:"stragglers"`
	// TaskRetries and WorkerFailures mirror rpcmr.Status so the recorder
	// JSON carries the retry/failure picture without a Prometheus scrape.
	TaskRetries    int64 `json:"task_retries"`
	WorkerFailures int64 `json:"worker_failures"`
	// MergeRounds counts the rounds of the out-of-core multi-round merge
	// schedule (0 when the merge ran as a single job).
	MergeRounds int `json:"merge_rounds,omitempty"`
	// MergeRoundBytes[i] is the candidate volume entering merge round i —
	// the per-round communication the MRC model bounds.
	MergeRoundBytes []int64 `json:"merge_round_bytes,omitempty"`
	// ReducerPeakBytes is the largest reducer-resident working set any
	// reduce task or merge fold reached, the number judged against
	// Config.ReducerBudgetBytes.
	ReducerPeakBytes int64 `json:"reducer_peak_bytes,omitempty"`
}

// Recorder accumulates one job's flight record. Safe for concurrent use;
// all methods no-op on a nil receiver.
type Recorder struct {
	mu         sync.Mutex
	job        string
	start      time.Time
	partitions map[int]*PartitionRecord
	tasks      []TaskRecord
	stragglers int64
	retries    int64
	failures   int64
	globalSky  int
	mergeRound []int64
	redPeak    int64
}

// NewRecorder returns an empty recorder for the named job.
func NewRecorder(job string) *Recorder {
	return &Recorder{
		job:        job,
		start:      time.Now(),
		partitions: make(map[int]*PartitionRecord),
	}
}

type recorderKey struct{}

// WithRecorder installs rec as the context's flight recorder.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom returns the context's flight recorder; nil when recording
// is off.
func RecorderFrom(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}

// part (mu held) returns the record for a partition, creating it.
func (r *Recorder) part(id int) *PartitionRecord {
	p := r.partitions[id]
	if p == nil {
		p = &PartitionRecord{Partition: id}
		r.partitions[id] = p
	}
	return p
}

// EnsurePartitions guarantees entries for partitions 0..n-1, so the
// report covers every planned partition even when some receive no data.
func (r *Recorder) EnsurePartitions(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := 0; id < n; id++ {
		r.part(id)
	}
}

// AddPartitionShuffle books one partition's shuffle contribution: records
// are map-output points routed to the partition (pre-combine), bytes the
// sealed frame payload it put on the wire.
func (r *Recorder) AddPartitionShuffle(id int, records, bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.part(id)
	p.InputRecords += records
	p.ShuffleBytes += bytes
}

// SetPartitionInput replaces one partition's input-record count — for
// engines that count partition occupancy directly (the in-process
// driver) rather than accumulating shuffle reports.
func (r *Recorder) SetPartitionInput(id int, records int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.part(id).InputRecords = records
}

// SetLocalSkyline records one partition's local skyline size.
func (r *Recorder) SetLocalSkyline(id, size int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.part(id).LocalSkyline = size
}

// SetGlobalSurvivors records how many of the partition's local skyline
// points survived the global merge — computed where both sides are in
// hand, right after the merging job.
func (r *Recorder) SetGlobalSurvivors(id, survivors int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.part(id).GlobalSurvivors = survivors
}

// SetGlobalSkyline records the global skyline size.
func (r *Recorder) SetGlobalSkyline(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.globalSky = n
}

// AddMergeRound books one round of the out-of-core merge schedule with
// the candidate bytes that entered it.
func (r *Recorder) AddMergeRound(bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mergeRound = append(r.mergeRound, bytes)
}

// SetReducerPeak records the largest reducer working set observed so
// far; smaller reports keep the running maximum.
func (r *Recorder) SetReducerPeak(bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if bytes > r.redPeak {
		r.redPeak = bytes
	}
}

// RecordTask appends one completed task; straggler tasks also bump the
// straggler tally.
func (r *Recorder) RecordTask(t TaskRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tasks = append(r.tasks, t)
	if t.Straggler {
		r.stragglers++
	}
}

// SetRetryCounts mirrors the cluster's cumulative retry/failure counters
// (rpcmr.Status.TaskRetries / WorkerFailures) into the record.
func (r *Recorder) SetRetryCounts(taskRetries, workerFailures int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retries = taskRetries
	r.failures = workerFailures
}

// Report assembles the current flight record: partitions sorted by id,
// per-partition optimality ratios, and the skew/optimality rollups.
// It may be called while the job is still running (the /debug handler
// does) — it snapshots whatever has been recorded so far.
func (r *Recorder) Report() *Report {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Job:              r.job,
		Start:            r.start,
		DurationSeconds:  time.Since(r.start).Seconds(),
		Partitions:       make([]PartitionRecord, 0, len(r.partitions)),
		Tasks:            append([]TaskRecord(nil), r.tasks...),
		GlobalSkyline:    r.globalSky,
		Stragglers:       r.stragglers,
		TaskRetries:      r.retries,
		WorkerFailures:   r.failures,
		MergeRounds:      len(r.mergeRound),
		MergeRoundBytes:  append([]int64(nil), r.mergeRound...),
		ReducerPeakBytes: r.redPeak,
	}
	ids := make([]int, 0, len(r.partitions))
	for id := range r.partitions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sum, n := 0.0, 0
	loads := make([]float64, 0, len(ids))
	haveInput := false
	for _, id := range ids {
		p := *r.partitions[id]
		if p.LocalSkyline > 0 {
			p.Optimality = float64(p.GlobalSurvivors) / float64(p.LocalSkyline)
			sum += p.Optimality
			n++
		}
		if p.InputRecords > 0 {
			haveInput = true
		}
		rep.Partitions = append(rep.Partitions, p)
	}
	if n > 0 {
		rep.Optimality = sum / float64(n)
	}
	// Load defaults to input records; classic rpcmr transports report no
	// per-partition volume, so fall back to local skyline sizes there.
	for _, p := range rep.Partitions {
		if haveInput {
			loads = append(loads, float64(p.InputRecords))
		} else {
			loads = append(loads, float64(p.LocalSkyline))
		}
	}
	rep.Skew = skewOf(loads)
	return rep
}

// skewOf computes max/mean/imbalance/Gini over per-partition loads.
func skewOf(loads []float64) Skew {
	var s Skew
	if len(loads) == 0 {
		return s
	}
	total := 0.0
	maxLoad := 0.0
	for _, v := range loads {
		total += v
		if v > maxLoad {
			maxLoad = v
		}
	}
	s.MaxLoad = int64(maxLoad)
	s.MeanLoad = total / float64(len(loads))
	if s.MeanLoad > 0 {
		s.Imbalance = maxLoad / s.MeanLoad
	}
	if total > 0 {
		// Mean absolute difference form: G = Σ_i Σ_j |x_i − x_j| / (2 n² μ).
		diff := 0.0
		for i := range loads {
			for j := range loads {
				d := loads[i] - loads[j]
				if d < 0 {
					d = -d
				}
				diff += d
			}
		}
		nn := float64(len(loads))
		s.Gini = diff / (2 * nn * nn * s.MeanLoad)
	}
	return s
}

// Publish bridges the record's rollups into a metrics registry, so the
// skew and optimality picture shows up in /metrics alongside the engine
// counters. Nil registries (or recorders) record nothing.
func (r *Recorder) Publish(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	rep := r.Report()
	reg.Gauge("skyline_load_max").Set(float64(rep.Skew.MaxLoad))
	reg.Gauge("skyline_load_mean").Set(rep.Skew.MeanLoad)
	reg.Gauge("skyline_load_imbalance").Set(rep.Skew.Imbalance)
	reg.Gauge("skyline_load_gini").Set(rep.Skew.Gini)
	reg.Gauge("skyline_local_optimality").Set(rep.Optimality)
	reg.Gauge("skyline_stragglers").Set(float64(rep.Stragglers))
	reg.Gauge("skyline_merge_rounds").Set(float64(rep.MergeRounds))
	reg.Gauge("skyline_reducer_peak_bytes").Set(float64(rep.ReducerPeakBytes))
	for _, p := range rep.Partitions {
		reg.Gauge("skyline_partition_optimality",
			L("partition", strconv.Itoa(p.Partition))).Set(p.Optimality)
	}
}
