package telemetry

import (
	"runtime"
	"time"
)

// RegisterProcessMetrics installs a scrape hook that refreshes the
// standard Go process gauges on every exposition or snapshot:
//
//	process_goroutines              live goroutine count
//	process_heap_alloc_bytes        bytes of allocated heap objects
//	process_heap_objects            live heap object count
//	process_gc_runs_total           completed GC cycles
//	process_gc_pause_seconds_total  cumulative stop-the-world pause
//	process_uptime_seconds          seconds since registration
//
// The hook calls runtime.ReadMemStats, which briefly stops the world —
// scrape cadence, not request cadence.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	r.OnScrape(func(r *Registry) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		r.Gauge("process_goroutines").Set(float64(runtime.NumGoroutine()))
		r.Gauge("process_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
		r.Gauge("process_heap_objects").Set(float64(ms.HeapObjects))
		r.Gauge("process_gc_runs_total").Set(float64(ms.NumGC))
		r.Gauge("process_gc_pause_seconds_total").Set(float64(ms.PauseTotalNs) / 1e9)
		r.Gauge("process_uptime_seconds").Set(time.Since(start).Seconds())
	})
}
