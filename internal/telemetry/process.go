package telemetry

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"time"
)

// RegisterProcessMetrics installs a scrape hook that refreshes the
// standard Go process gauges on every exposition or snapshot:
//
//	process_goroutines              live goroutine count
//	process_heap_alloc_bytes        bytes of allocated heap objects
//	process_heap_objects            live heap object count
//	process_gc_runs_total           completed GC cycles
//	process_gc_pause_seconds_total  cumulative stop-the-world pause
//	process_uptime_seconds          seconds since registration
//	process_cpu_seconds_total       user+system CPU consumed (Linux)
//	process_rss_bytes               resident set size (Linux)
//
// The CPU and RSS gauges are read from /proc/self/stat and /statm and
// are simply absent on platforms without procfs. The hook calls
// runtime.ReadMemStats, which briefly stops the world — scrape cadence,
// not request cadence.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	ps := newProcStat()
	r.OnScrape(func(r *Registry) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		r.Gauge("process_goroutines").Set(float64(runtime.NumGoroutine()))
		r.Gauge("process_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
		r.Gauge("process_heap_objects").Set(float64(ms.HeapObjects))
		r.Gauge("process_gc_runs_total").Set(float64(ms.NumGC))
		r.Gauge("process_gc_pause_seconds_total").Set(float64(ms.PauseTotalNs) / 1e9)
		r.Gauge("process_uptime_seconds").Set(time.Since(start).Seconds())
		if cpu, rss, ok := ps.read(); ok {
			r.Gauge("process_cpu_seconds_total").Set(cpu)
			r.Gauge("process_rss_bytes").Set(rss)
		}
	})
}

// procStat reads CPU seconds and RSS from procfs with a reusable buffer
// so repeated scrapes stay cheap. Absent procfs (first read fails) it
// disables itself.
type procStat struct {
	buf      []byte
	pageSize float64
	clockTck float64
	disabled bool
}

func newProcStat() *procStat {
	return &procStat{
		buf:      make([]byte, 0, 1024),
		pageSize: float64(os.Getpagesize()),
		// USER_HZ is 100 on every Linux configuration Go supports; procfs
		// stat fields 14/15 (utime/stime) are expressed in these ticks.
		clockTck: 100,
	}
}

// read returns (cpuSeconds, rssBytes, ok).
func (p *procStat) read() (float64, float64, bool) {
	if p.disabled {
		return 0, 0, false
	}
	stat, ok := p.readFile("/proc/self/stat")
	if !ok {
		p.disabled = true
		return 0, 0, false
	}
	// comm (field 2) may contain spaces; skip past the closing paren.
	if i := bytes.LastIndexByte(stat, ')'); i >= 0 {
		stat = stat[i+1:]
	}
	fields := bytes.Fields(stat)
	// After the paren: field 3 (state) is index 0, so utime/stime
	// (fields 14/15) are indexes 11/12 and rss (field 24) is index 21.
	if len(fields) < 22 {
		return 0, 0, false
	}
	utime, err1 := strconv.ParseFloat(string(fields[11]), 64)
	stime, err2 := strconv.ParseFloat(string(fields[12]), 64)
	rssPages, err3 := strconv.ParseFloat(string(fields[21]), 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, false
	}
	return (utime + stime) / p.clockTck, rssPages * p.pageSize, true
}

// readFile reads path into the reusable buffer.
func (p *procStat) readFile(path string) ([]byte, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	p.buf = p.buf[:cap(p.buf)]
	n, err := f.Read(p.buf)
	if n <= 0 {
		_ = err
		return nil, false
	}
	return p.buf[:n], true
}
