package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestStartSpanOffIsNil(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "op")
	if s != nil {
		t.Fatal("span without tracer should be nil")
	}
	if ctx2 != ctx {
		t.Error("context should be unchanged on the off path")
	}
	// All methods must be safe on the nil span.
	s.SetAttr("k", 1)
	s.SetTrack(3)
	s.End()
	RecordSpan(ctx, "x", time.Now(), time.Millisecond)
}

func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "job", A("n", 10))
	cctx, child := StartSpan(ctx, "map")
	_, grand := StartSpan(cctx, "task")
	grand.SetTrack(2)
	grand.End()
	child.End()
	RecordSpan(ctx, "shuffle", time.Now().Add(-time.Millisecond), time.Millisecond)
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["map"].Parent != byName["job"].ID {
		t.Error("map span not parented to job")
	}
	if byName["task"].Parent != byName["map"].ID {
		t.Error("task span not parented to map")
	}
	if byName["shuffle"].Parent != byName["job"].ID {
		t.Error("recorded span not parented to job")
	}
	if byName["task"].Track != 2 {
		t.Errorf("task track = %d, want 2", byName["task"].Track)
	}
	if byName["job"].Parent != 0 {
		t.Error("root has a parent")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, "worker")
			s.SetTrack(i)
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 17 {
		t.Errorf("got %d spans, want 17", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "pipeline")
	_, child := StartSpan(ctx, "phase")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			TS    int64                  `json:"ts"`
			Dur   int64                  `json:"dur"`
			Args  map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			t.Errorf("event %q phase = %q", e.Name, e.Phase)
		}
		if e.TS < 0 {
			t.Errorf("event %q has negative ts", e.Name)
		}
		if _, ok := e.Args["span_id"]; !ok {
			t.Errorf("event %q missing span_id arg", e.Name)
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "a")
	s.End()
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Error("Reset left spans behind")
	}
}
