package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// Run history: a bounded on-disk JSONL store of per-run summaries
// (flight rollups + critical-path blame), so a regression — this run is
// slower, more skewed, or more straggler-ridden than the runs before it
// — is detected automatically instead of by eyeballing BENCH files.
// One line per run keeps the file greppable and append-cheap; the store
// rewrites itself down to the retention limit when it overgrows.

// RunSummary is one run's flat record. The fields mirror the flight
// recorder's rollups plus the critical-path profiler's blame; keeping
// them flat (no nested analysis types) is what lets the critpath
// package build on telemetry without a dependency cycle.
type RunSummary struct {
	Time time.Time `json:"time"`
	Job  string    `json:"job"`
	// Label carries the run's comparable shape (e.g. "n=4000 d=4 p=8");
	// baselines only form across runs with the same Job and Label.
	Label                    string             `json:"label,omitempty"`
	MakespanSeconds          float64            `json:"makespan_seconds"`
	PhaseSeconds             map[string]float64 `json:"phase_seconds,omitempty"`
	BottleneckPhase          string             `json:"bottleneck_phase,omitempty"`
	BottleneckWorker         string             `json:"bottleneck_worker,omitempty"`
	PredictedBalancedSeconds float64            `json:"predicted_balanced_seconds,omitempty"`
	Imbalance                float64            `json:"imbalance,omitempty"`
	Gini                     float64            `json:"gini,omitempty"`
	Optimality               float64            `json:"optimality,omitempty"`
	Stragglers               int64              `json:"stragglers,omitempty"`
	GlobalSkyline            int                `json:"global_skyline,omitempty"`
}

// Regression flags one metric of the latest run that moved past its
// tolerance against the baseline (the median of prior same-shape runs).
type Regression struct {
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Ratio    float64 `json:"ratio"`
}

// RunHistory is the bounded store. Safe for concurrent use; a nil
// *RunHistory no-ops on every method, matching the package's other
// off-by-default instruments.
type RunHistory struct {
	mu    sync.Mutex
	path  string // "" = in-memory only
	limit int
	runs  []RunSummary
}

// OpenRunHistory loads (or starts) a history at path, retaining at most
// limit runs (default 200 when limit <= 0). An empty path keeps the
// history in memory only. Unparsable lines in an existing file are
// skipped, not fatal: a truncated tail from a crashed run must not
// brick the next one.
func OpenRunHistory(path string, limit int) (*RunHistory, error) {
	if limit <= 0 {
		limit = 200
	}
	h := &RunHistory{path: path, limit: limit}
	if path == "" {
		return h, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return h, nil
	}
	if err != nil {
		return nil, fmt.Errorf("run history: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var s RunSummary
		if json.Unmarshal(sc.Bytes(), &s) == nil && !s.Time.IsZero() {
			h.runs = append(h.runs, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("run history: %w", err)
	}
	if len(h.runs) > limit {
		h.runs = append([]RunSummary(nil), h.runs[len(h.runs)-limit:]...)
	}
	return h, nil
}

// Append records one run and persists it. When the on-disk file has
// grown past twice the retention limit it is compacted down to the
// in-memory window.
func (h *RunHistory) Append(s RunSummary) error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.runs = append(h.runs, s)
	overgrown := len(h.runs) > h.limit
	if overgrown {
		h.runs = append([]RunSummary(nil), h.runs[len(h.runs)-h.limit:]...)
	}
	if h.path == "" {
		return nil
	}
	if overgrown {
		return h.rewriteLocked()
	}
	line, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("run history: %w", err)
	}
	f, err := os.OpenFile(h.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("run history: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("run history: %w", err)
	}
	return nil
}

// rewriteLocked compacts the file to the retained window (mu held).
func (h *RunHistory) rewriteLocked() error {
	tmp := h.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("run history: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, s := range h.runs {
		line, err := json.Marshal(s)
		if err != nil {
			f.Close()
			return fmt.Errorf("run history: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("run history: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("run history: %w", err)
	}
	return os.Rename(tmp, h.path)
}

// Runs returns a copy of the retained runs, oldest first.
func (h *RunHistory) Runs() []RunSummary {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]RunSummary(nil), h.runs...)
}

// Regression tolerances: a metric regresses when it exceeds the
// baseline by 25% (and by an absolute floor, so microsecond jitter on
// trivial runs doesn't page anyone).
const (
	regressionRatio      = 1.25
	regressionFloorSecs  = 0.05
	regressionFloorUnits = 0.1
)

// CompareLatest judges the most recent run against the median of the
// prior runs with the same Job+Label shape. No baseline (fewer than two
// comparable prior runs) means no verdict: an empty slice.
func (h *RunHistory) CompareLatest() []Regression {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.runs) < 2 {
		return nil
	}
	cur := h.runs[len(h.runs)-1]
	var prior []RunSummary
	for _, r := range h.runs[:len(h.runs)-1] {
		if r.Job == cur.Job && r.Label == cur.Label {
			prior = append(prior, r)
		}
	}
	if len(prior) < 2 {
		return nil
	}
	med := func(get func(RunSummary) float64) float64 {
		vals := make([]float64, len(prior))
		for i, r := range prior {
			vals[i] = get(r)
		}
		sort.Float64s(vals)
		return vals[len(vals)/2]
	}
	var out []Regression
	check := func(metric string, baseline, current, floor float64) {
		if baseline <= 0 || current <= baseline*regressionRatio || current-baseline < floor {
			return
		}
		out = append(out, Regression{Metric: metric, Baseline: baseline, Current: current, Ratio: current / baseline})
	}
	check("makespan_seconds", med(func(r RunSummary) float64 { return r.MakespanSeconds }),
		cur.MakespanSeconds, regressionFloorSecs)
	check("imbalance", med(func(r RunSummary) float64 { return r.Imbalance }),
		cur.Imbalance, regressionFloorUnits)
	check("stragglers", med(func(r RunSummary) float64 { return float64(r.Stragglers) }),
		float64(cur.Stragglers), regressionFloorUnits)
	for _, phase := range []string{"map", "shuffle", "reduce", "coordinate"} {
		check("phase_seconds."+phase, med(func(r RunSummary) float64 { return r.PhaseSeconds[phase] }),
			cur.PhaseSeconds[phase], regressionFloorSecs)
	}
	return out
}

// RunHistoryPath is where MountRunHistory serves the store.
const RunHistoryPath = "/debug/runhistory"

// MountRunHistory serves the retained runs plus the latest run's
// regression verdict as JSON. A nil history (source returns nil) is a
// 404, matching the package's other mounts.
func MountRunHistory(mux *http.ServeMux, source func() *RunHistory) {
	mux.HandleFunc(RunHistoryPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h := source()
		if h == nil {
			http.Error(w, "run history not available", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Runs        []RunSummary `json:"runs"`
			Regressions []Regression `json:"regressions"`
		}{h.Runs(), h.CompareLatest()})
	})
}
