package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SLO tracking: objectives ("p99 latency under 5ms", "99.9% of requests
// succeed") are evaluated as error budgets with multi-window burn rates,
// the way an SRE alert would — burn rate is the rate at which the error
// budget is being consumed relative to the sustainable rate, so a burn of
// 1.0 spends exactly the budget over the objective's life and a burn of
// 10 exhausts it ten times too fast. Sources are cumulative (histogram
// snapshots, good/bad counters); the tracker differences them against a
// sampled history, so short windows see recent behaviour and the overall
// figures see everything since the tracker started.

// SLOSample is one cumulative good/bad observation pair.
type SLOSample struct {
	Good, Bad int64
}

// Total returns good+bad.
func (s SLOSample) Total() int64 { return s.Good + s.Bad }

// SLOSource reports the cumulative good/bad split for one objective. For
// a latency objective, "bad" is requests slower than the threshold; for
// an availability objective, failed requests.
type SLOSource func() SLOSample

// LatencySLOSource builds a source from a histogram handle: observations
// in buckets whose upper bound is at or below threshold count as good.
// The threshold is effectively rounded down to a bucket boundary — pick
// thresholds on bucket bounds (DurationBuckets is ×2.5 from 100µs) for
// exact accounting.
func LatencySLOSource(h *Histogram, threshold time.Duration) SLOSource {
	t := threshold.Seconds()
	return func() SLOSample {
		snap := h.Snapshot()
		var s SLOSample
		for i, c := range snap.Counts {
			if i < len(snap.Bounds) && snap.Bounds[i] <= t {
				s.Good += c
			} else {
				s.Bad += c
			}
		}
		return s
	}
}

// CounterSLOSource builds a source from good/bad counter handles (either
// may be nil — a missing class simply counts zero).
func CounterSLOSource(good, bad func() int64) SLOSource {
	return func() SLOSample {
		var s SLOSample
		if good != nil {
			s.Good = good()
		}
		if bad != nil {
			s.Bad = bad()
		}
		return s
	}
}

// SLOWindow is one evaluation window's burn state.
type SLOWindow struct {
	// WindowSeconds is the configured lookback; EffectiveSeconds is what
	// the history actually covered (shorter early in the process life).
	WindowSeconds    float64 `json:"window_seconds"`
	EffectiveSeconds float64 `json:"effective_seconds"`
	// Requests and Bad are the deltas over the window.
	Requests int64 `json:"requests"`
	Bad      int64 `json:"bad"`
	// BadRate is Bad/Requests; BurnRate is BadRate over the objective's
	// error budget (1.0 = spending the budget exactly at the sustainable
	// rate).
	BadRate  float64 `json:"bad_rate"`
	BurnRate float64 `json:"burn_rate"`
}

// SLOStatus is one objective's evaluated state.
type SLOStatus struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "latency" or "availability"
	// Objective description: for latency, "p99 <= 0.005s" becomes
	// Quantile 0.99 + ThresholdSeconds 0.005; for availability, Target
	// holds the success-ratio floor (e.g. 0.999).
	Quantile         float64 `json:"quantile,omitempty"`
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`
	Target           float64 `json:"target,omitempty"`
	// Budget is the allowed bad fraction (1-Quantile or 1-Target).
	Budget float64 `json:"budget"`
	// Requests/Bad/Achieved cover everything since tracking started.
	// Achieved is the overall good ratio — for latency, the fraction of
	// requests at or under the threshold (meeting the objective means
	// Achieved >= Quantile); for availability, the success ratio.
	Requests int64   `json:"requests"`
	Bad      int64   `json:"bad"`
	Achieved float64 `json:"achieved"`
	// BudgetUsed is the fraction of the total error budget consumed
	// (Bad / (Budget × Requests); >1 means the objective is violated).
	BudgetUsed float64 `json:"budget_used"`
	// Violated reports Achieved below the objective over the whole run.
	Violated bool `json:"violated"`
	// Windows are the configured burn-rate windows, shortest first.
	Windows []SLOWindow `json:"windows"`
	// Burning reports every window burning above the alert rate — the
	// multi-window condition that suppresses blips (short window) and
	// stale alerts (long window).
	Burning bool `json:"burning"`
}

// sloObjective is one configured objective plus its sample history.
type sloObjective struct {
	name      string
	kind      string
	quantile  float64
	threshold float64
	target    float64
	budget    float64
	source    SLOSource
	history   []sloPoint // ascending time, pruned past the longest window
}

type sloPoint struct {
	at     time.Time
	sample SLOSample
}

// SLOConfig configures an SLOTracker.
type SLOConfig struct {
	// Windows are the burn-rate lookbacks, shortest first (default
	// 1m, 5m, 30m).
	Windows []time.Duration
	// AlertBurn is the burn rate above which every window must sit for an
	// objective to be Burning (default 1.0 — budget spending faster than
	// sustainable).
	AlertBurn float64
	// Events, when non-nil, receives a warning each time an objective
	// transitions into the burning state (and an info when it recovers).
	Events *EventLog
}

// SLOTracker evaluates configured objectives against their sources. Safe
// for concurrent use; nil-safe throughout.
type SLOTracker struct {
	mu         sync.Mutex
	cfg        SLOConfig
	objectives []*sloObjective
	burning    map[string]bool
	now        func() time.Time // injectable for tests
}

// NewSLOTracker returns a tracker with no objectives yet.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	if cfg.AlertBurn <= 0 {
		cfg.AlertBurn = 1.0
	}
	return &SLOTracker{cfg: cfg, burning: make(map[string]bool), now: time.Now}
}

// AddLatency registers a latency objective: at least quantile (e.g. 0.99)
// of requests at or under threshold. The source is sampled immediately so
// every window has a baseline from registration time.
func (t *SLOTracker) AddLatency(name string, quantile float64, threshold time.Duration, source SLOSource) {
	t.add(&sloObjective{
		name: name, kind: "latency",
		quantile: quantile, threshold: threshold.Seconds(),
		budget: 1 - quantile, source: source,
	})
}

// AddAvailability registers an availability objective: at least target
// (e.g. 0.999) of requests succeed.
func (t *SLOTracker) AddAvailability(name string, target float64, source SLOSource) {
	t.add(&sloObjective{
		name: name, kind: "availability",
		target: target, budget: 1 - target, source: source,
	})
}

func (t *SLOTracker) add(o *sloObjective) {
	if t == nil || o.source == nil || o.budget <= 0 || o.budget >= 1 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	o.history = append(o.history, sloPoint{at: t.now(), sample: o.source()})
	t.objectives = append(t.objectives, o)
}

// Tick samples every objective's source into its history, prunes history
// beyond the longest window, and emits burn-transition events. Call it on
// a steady cadence (Run does) — window resolution is the tick interval.
func (t *SLOTracker) Tick() {
	if t == nil {
		return
	}
	t.mu.Lock()
	now := t.now()
	maxW := t.cfg.Windows[len(t.cfg.Windows)-1]
	for _, o := range t.objectives {
		o.history = append(o.history, sloPoint{at: now, sample: o.source()})
		// Keep one point at or beyond the longest window so deltas always
		// have a baseline covering it.
		cut := 0
		for cut+1 < len(o.history) && now.Sub(o.history[cut+1].at) >= maxW {
			cut++
		}
		o.history = o.history[cut:]
	}
	statuses := t.statusLocked(now)
	events := t.cfg.Events
	type transition struct {
		st  SLOStatus
		was bool
	}
	var trans []transition
	for _, st := range statuses {
		was := t.burning[st.Name]
		if st.Burning != was {
			t.burning[st.Name] = st.Burning
			trans = append(trans, transition{st, was})
		}
	}
	t.mu.Unlock()
	// Event emission outside the lock: the log is its own sync domain.
	for _, tr := range trans {
		if tr.st.Burning {
			events.Warn("slo budget burning",
				A("objective", tr.st.Name), A("kind", tr.st.Kind),
				A("burn", fmt.Sprintf("%.2f", tr.st.Windows[0].BurnRate)),
				A("budget_used", fmt.Sprintf("%.3f", tr.st.BudgetUsed)))
		} else {
			events.Info("slo burn recovered",
				A("objective", tr.st.Name), A("kind", tr.st.Kind))
		}
	}
}

// Run ticks the tracker every interval until ctx is done.
func (t *SLOTracker) Run(ctx context.Context, interval time.Duration) {
	if t == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t.Tick()
		}
	}
}

// Status evaluates every objective now: sources are sampled fresh (so a
// curl sees current traffic even between ticks), windows are differenced
// against the recorded history.
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statusLocked(t.now())
}

func (t *SLOTracker) statusLocked(now time.Time) []SLOStatus {
	out := make([]SLOStatus, 0, len(t.objectives))
	for _, o := range t.objectives {
		cur := o.source()
		st := SLOStatus{
			Name: o.name, Kind: o.kind,
			Quantile: o.quantile, ThresholdSeconds: o.threshold,
			Target: o.target, Budget: o.budget,
			Requests: cur.Total(), Bad: cur.Bad,
		}
		if st.Requests > 0 {
			st.Achieved = float64(cur.Good) / float64(st.Requests)
			st.BudgetUsed = float64(cur.Bad) / (o.budget * float64(st.Requests))
			floor := o.quantile
			if o.kind == "availability" {
				floor = o.target
			}
			st.Violated = st.Achieved < floor
		}
		st.Burning = true
		for _, w := range t.cfg.Windows {
			win := burnWindow(o, cur, now, w)
			st.Windows = append(st.Windows, win)
			if win.BurnRate <= t.cfg.AlertBurn {
				st.Burning = false
			}
		}
		if st.Requests == 0 {
			st.Burning = false
		}
		out = append(out, st)
	}
	return out
}

// burnWindow differences the current sample against the newest history
// point at least w old (falling back to the oldest available — the
// effective window is then shorter and reported as such).
func burnWindow(o *sloObjective, cur SLOSample, now time.Time, w time.Duration) SLOWindow {
	win := SLOWindow{WindowSeconds: w.Seconds()}
	if len(o.history) == 0 {
		return win
	}
	base := o.history[0]
	for _, p := range o.history[1:] {
		if now.Sub(p.at) >= w {
			base = p
		} else {
			break
		}
	}
	win.EffectiveSeconds = now.Sub(base.at).Seconds()
	win.Requests = cur.Total() - base.sample.Total()
	win.Bad = cur.Bad - base.sample.Bad
	if win.Requests > 0 {
		win.BadRate = float64(win.Bad) / float64(win.Requests)
		win.BurnRate = win.BadRate / o.budget
	}
	return win
}

// QuantileFromSnapshot estimates the q-quantile (0..1) of a histogram
// snapshot by linear interpolation within the containing bucket — the
// Prometheus histogram_quantile estimate. The overflow bucket reports
// its lower bound (the largest finite bound). Returns 0 with no samples.
func QuantileFromSnapshot(s HistogramSnapshot, q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if c == 0 {
			return s.Bounds[i]
		}
		return lo + (s.Bounds[i]-lo)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// SLOPath is where MountSLO serves the tracker state.
const SLOPath = "/debug/slo"

// sloDoc is the /debug/slo JSON shape.
type sloDoc struct {
	Objectives []SLOStatus `json:"objectives"`
	Burning    bool        `json:"burning"`
}

// MountSLO serves the tracker's evaluated objectives as JSON at
// /debug/slo. The source is called per request and may return nil (SLO
// tracking off → 404), so binaries can swap trackers without
// re-mounting.
func MountSLO(mux *http.ServeMux, source func() *SLOTracker) {
	mux.HandleFunc(SLOPath, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		t := source()
		if t == nil {
			http.Error(w, "slo tracking off", http.StatusNotFound)
			return
		}
		doc := sloDoc{Objectives: t.Status()}
		for _, o := range doc.Objectives {
			if o.Burning {
				doc.Burning = true
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}
