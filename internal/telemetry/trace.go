package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values must be
// JSON-marshalable (numbers, strings, bools).
type Attr struct {
	Key   string
	Value interface{}
}

// A is shorthand for constructing an Attr.
func A(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// SpanData is one finished span as recorded by a Tracer.
type SpanData struct {
	// ID and Parent link spans into a tree; Parent is 0 for roots.
	ID, Parent uint64
	// Name is the operation label ("map", "partitioning-job", ...).
	Name string
	// Track groups spans onto rows in the Chrome trace view: 0 inherits
	// the parent's track, so engines put each worker slot on its own
	// track to get the per-worker timeline of a real cluster.
	Track int
	Start time.Time
	// Duration is the span's wall time (explicitly recorded spans may
	// predate their recording).
	Duration time.Duration
	Attrs    []Attr
}

// Tracer accumulates finished spans. Safe for concurrent use. Tracers
// are installed into a context with WithTracer; everything downstream
// of that context records into it.
type Tracer struct {
	nextID atomic.Uint64
	mu     sync.Mutex
	spans  []SpanData
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is one in-flight operation. A nil *Span is the off state: every
// method no-ops, so call sites never branch on whether tracing is on.
// A Span's mutating methods must be called from the goroutine that
// started it, before End.
type Span struct {
	tracer *Tracer
	data   SpanData
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer installs t as the context's trace destination.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, preferring the one carried
// by the current span; nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	if s, ok := ctx.Value(spanKey).(*Span); ok && s != nil {
		return s.tracer
	}
	if t, ok := ctx.Value(tracerKey).(*Tracer); ok {
		return t
	}
	return nil
}

// SpanFrom returns the context's current span (nil when none).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan begins a span named name under the context's current span
// (if any) and returns a derived context carrying the new span. When
// the context has no tracer, it returns ctx unchanged and a nil span —
// the fast path costs two context lookups and nothing else.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	var t *Tracer
	if parent != nil {
		t = parent.tracer
	} else {
		t = TracerFrom(ctx)
	}
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		data: SpanData{
			ID:    t.nextID.Add(1),
			Name:  name,
			Start: time.Now(),
			Attrs: attrs,
		},
	}
	if parent != nil {
		s.data.Parent = parent.data.ID
		s.data.Track = parent.data.Track
	}
	return context.WithValue(ctx, spanKey, s), s
}

// ID returns the span's tracer-local id (0 for a nil span) — the handle
// propagated across processes so remote children can attach under it.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// SetTrack pins the span (and, by inheritance, its children) to a
// Chrome-trace row.
func (s *Span) SetTrack(track int) {
	if s == nil {
		return
	}
	s.data.Track = track
}

// End finishes the span and records it. End is idempotent-unsafe by
// design (call exactly once); ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.Duration = time.Since(s.data.Start)
	s.tracer.record(s.data)
}

// RecordSpan records an already-finished interval as a child of the
// context's current span — for phases whose boundaries are observed
// after the fact (e.g. the master's shuffle happens inside an RPC
// handler with no context). No-op when tracing is off.
func RecordSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	parent := SpanFrom(ctx)
	var t *Tracer
	if parent != nil {
		t = parent.tracer
	} else {
		t = TracerFrom(ctx)
	}
	if t == nil {
		return
	}
	data := SpanData{
		ID:       t.nextID.Add(1),
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	}
	if parent != nil {
		data.Parent = parent.data.ID
		data.Track = parent.data.Track
	}
	t.record(data)
}

func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, d)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans, in completion order.
func (t *Tracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.mu.Unlock()
}

// Import grafts externally recorded spans — e.g. shipped back from a
// worker process — into this tracer, stitching one cross-process trace.
// Span IDs are remapped to fresh local IDs (worker-local counters would
// collide with the master's), parent links *within* the batch are
// preserved, and batch roots (spans whose parent is absent from the
// batch) are attached under parent. Attrs and tracks ride along
// untouched, so a worker that pinned its task span to a track hint keeps
// its timeline row in the stitched Chrome trace.
//
// Timestamps are anchored to the importer's clock: see ImportAt, which
// Import calls with time.Now() as the receipt time.
func (t *Tracer) Import(parent uint64, spans []SpanData) {
	t.ImportAt(parent, time.Now(), spans)
}

// ImportAt is Import with an explicit receipt time. Worker Start times
// are worker wall-clock readings; with clock skew a stitched trace could
// show a task starting before the master span that dispatched it, or
// ending in the future. ImportAt re-anchors the batch: the latest span
// end is pinned to at — the moment the master received the report, an
// upper bound on when the work truly finished — and every span in the
// batch shifts by the same delta, preserving all intra-batch timing. A
// worker whose clock runs behind slides forward, one running ahead
// slides back; an in-sync worker moves by only the RPC flight time.
// Since the batch's work all happened after its dispatch (which happened
// after the parent span started), an anchored batch can no longer start
// before its parent. A zero at leaves the batch unanchored.
func (t *Tracer) ImportAt(parent uint64, at time.Time, spans []SpanData) {
	if t == nil || len(spans) == 0 {
		return
	}
	var latest time.Time
	for _, s := range spans {
		if end := s.Start.Add(s.Duration); end.After(latest) {
			latest = end
		}
	}
	var delta time.Duration
	if !at.IsZero() && !latest.IsZero() {
		delta = at.Sub(latest)
	}
	remap := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		remap[s.ID] = t.nextID.Add(1)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range spans {
		s.ID = remap[s.ID]
		if newParent, ok := remap[s.Parent]; ok {
			s.Parent = newParent
		} else {
			s.Parent = parent
		}
		s.Start = s.Start.Add(delta)
		t.spans = append(t.spans, s)
	}
}

// chromeEvent is one trace_event entry ("X" = complete event).
type chromeEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    int64                  `json:"ts"`  // microseconds
	Dur   int64                  `json:"dur"` // microseconds
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event
// JSON ({"traceEvents": [...]}), loadable in chrome://tracing or
// https://ui.perfetto.dev. Timestamps are relative to the earliest
// span; each span's Track becomes a thread row, and parent/span IDs
// ride along in args for tooling.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]interface{}{"span_id": s.ID}
		if s.Parent != 0 {
			args["parent_id"] = s.Parent
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    s.Start.Sub(epoch).Microseconds(),
			Dur:   s.Duration.Microseconds(),
			PID:   1,
			TID:   s.Track,
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": events})
}
