package telemetry

import (
	"math/rand"
	"strings"
	"testing"
)

// The exposition writer escapes label values (\ → \\, newline → \n,
// " → \"); ParsePrometheus reads sample names exactly as rendered. The
// tests below pin the round trip: every series written with a hostile
// label value must come back as exactly one sample whose name is the
// canonical seriesID and whose value survives, and distinct raw values
// must never collide after escaping.

func TestEscapeLabelRoundTripHostileValues(t *testing.T) {
	values := []string{
		`plain`,
		`back\slash`,
		`double\\backslash`,
		`trailing\`,
		`qu"ote`,
		"new\nline",
		"\n",
		`\n`, // literal backslash-n, distinct from a real newline
		`\"`,
		"mix\\of\n\"all\"\nthree\\",
		`spa ce and {braces} and = signs`,
		``,
	}
	r := NewRegistry()
	for i, v := range values {
		r.Counter("escape_rt_total", L("v", v)).Add(int64(i + 1))
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(sb.String())
	if err != nil {
		t.Fatalf("hostile exposition does not parse: %v\n%s", err, sb.String())
	}
	for i, v := range values {
		name := seriesID("escape_rt_total", []Label{L("v", v)})
		got, ok := samples[name]
		if !ok {
			t.Errorf("value %q: no sample named %q in parsed output", v, name)
			continue
		}
		if got != float64(i+1) {
			t.Errorf("value %q: sample = %v, want %d", v, got, i+1)
		}
	}
	// Injectivity: n distinct raw values must yield n distinct series.
	n := 0
	for name := range samples {
		if strings.HasPrefix(name, "escape_rt_total{") {
			n++
		}
	}
	if n != len(values) {
		t.Errorf("distinct series = %d, want %d (escaping collided)\n%s", n, len(values), sb.String())
	}
}

// TestEscapeLabelInjective drives the escaper directly: no two distinct
// inputs over the hostile alphabet may render identically.
func TestEscapeLabelInjective(t *testing.T) {
	alphabet := []byte{'a', '\\', '"', '\n', 'n'}
	var inputs []string
	var build func(prefix string, depth int)
	build = func(prefix string, depth int) {
		inputs = append(inputs, prefix)
		if depth == 0 {
			return
		}
		for _, c := range alphabet {
			build(prefix+string(c), depth-1)
		}
	}
	build("", 3) // all strings of length ≤ 3 over the alphabet
	seen := make(map[string]string, len(inputs))
	for _, in := range inputs {
		esc := escapeLabel(in)
		if strings.ContainsAny(esc, "\n") {
			t.Errorf("escapeLabel(%q) = %q still contains a newline", in, esc)
		}
		if prev, ok := seen[esc]; ok {
			t.Errorf("escapeLabel collision: %q and %q both render %q", prev, in, esc)
		}
		seen[esc] = in
	}
}

// TestEscapeRoundTripProperty is the randomized version: a registry of
// series with random label values over a hostile alphabet must write,
// parse, and account for every series with the right value.
func TestEscapeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []rune{'x', 'y', '\\', '"', '\n', ' ', '{', '}', '=', ','}
	for iter := 0; iter < 50; iter++ {
		r := NewRegistry()
		want := make(map[string]float64)
		for s := 0; s < 20; s++ {
			n := rng.Intn(12)
			runes := make([]rune, n)
			for i := range runes {
				runes[i] = alphabet[rng.Intn(len(alphabet))]
			}
			v := string(runes)
			id := seriesID("prop_total", []Label{L("v", v)})
			if _, dup := want[id]; dup {
				continue // same random value drawn twice
			}
			val := float64(rng.Intn(1000) + 1)
			r.Counter("prop_total", L("v", v)).Add(int64(val))
			want[id] = val
		}
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		samples, err := ParsePrometheus(sb.String())
		if err != nil {
			t.Fatalf("iter %d: exposition does not parse: %v\n%s", iter, err, sb.String())
		}
		for id, val := range want {
			if samples[id] != val {
				t.Errorf("iter %d: %q = %v, want %v", iter, id, samples[id], val)
			}
		}
	}
}
