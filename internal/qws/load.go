package qws

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/points"
)

// Load parses the published QWS dataset CSV format (Al-Masri & Mahmoud):
// nine numeric QoS columns in the order of Attributes[0..8], optionally
// followed by the service name and WSDL address columns, which are
// returned as names. Lines starting with '#' are comments. Values are
// re-oriented for minimization exactly like Generate's output, so a real
// QWS file is a drop-in replacement for the synthetic data everywhere in
// this repository.
func Load(r io.Reader) (points.Set, []string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	var set points.Set
	var names []string
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("qws: csv read: %w", err)
		}
		line++
		if len(rec) < 9 {
			return nil, nil, fmt.Errorf("qws: row %d has %d columns, want >= 9", line, len(rec))
		}
		// Skip a header row if the first field is not numeric.
		if line == 1 {
			if _, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64); err != nil {
				continue
			}
		}
		p := make(points.Point, 9)
		for j := 0; j < 9; j++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("qws: row %d column %d: %w", line, j+1, err)
			}
			a := Attributes[j]
			v = clampRange(v, a.Min, a.Max)
			if a.HigherBetter {
				p[j] = a.Max - v
			} else {
				p[j] = v - a.Min
			}
		}
		set = append(set, p)
		if len(rec) > 9 {
			names = append(names, strings.TrimSpace(rec[9]))
		} else {
			names = append(names, fmt.Sprintf("service-%05d", len(set)))
		}
	}
	if len(set) == 0 {
		return nil, nil, fmt.Errorf("qws: no data rows")
	}
	return set, names, nil
}
