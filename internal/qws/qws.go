// Package qws models the QWS web-service QoS dataset used in the paper's
// evaluation (Al-Masri & Mahmoud: ~10,000 real web services measured on 9
// QoS attributes, extended by the paper to 100,000 services and 10
// attributes by sampling within a narrow range of the empirical
// distribution).
//
// The real QWS dataset cannot be redistributed here, so this package is a
// calibrated synthetic substitute: it reproduces the published attribute
// ranges and the skew of their marginal distributions, and couples
// attributes through a latent provider-quality factor so that the joint
// distribution is mildly correlated — the regime real QoS data sits in
// (between the independent and correlated synthetic benchmarks). The
// substitution is documented in DESIGN.md.
//
// All returned points follow the minimization convention: attributes where
// higher is better (availability, throughput, ...) are stored as
// (max − value), so the skyline semantics match the rest of the library.
package qws

import (
	"math"
	"math/rand"

	"repro/internal/points"
)

// Attribute describes one QoS dimension of the dataset.
type Attribute struct {
	Name         string
	Unit         string
	Min, Max     float64 // raw value range (before orientation)
	HigherBetter bool    // true if the raw attribute is a benefit metric
}

// Attributes lists the nine QWS attributes plus the Price attribute the
// paper adds to reach 10 dimensions. Order is the column order of
// generated points.
var Attributes = []Attribute{
	{Name: "ResponseTime", Unit: "ms", Min: 37, Max: 4989, HigherBetter: false},
	{Name: "Availability", Unit: "%", Min: 7, Max: 100, HigherBetter: true},
	{Name: "Throughput", Unit: "invokes/s", Min: 0.1, Max: 43.1, HigherBetter: true},
	{Name: "Successability", Unit: "%", Min: 8, Max: 100, HigherBetter: true},
	{Name: "Reliability", Unit: "%", Min: 33, Max: 89, HigherBetter: true},
	{Name: "Compliance", Unit: "%", Min: 33, Max: 100, HigherBetter: true},
	{Name: "BestPractices", Unit: "%", Min: 5, Max: 95, HigherBetter: true},
	{Name: "Latency", Unit: "ms", Min: 0.26, Max: 4140, HigherBetter: false},
	{Name: "Documentation", Unit: "%", Min: 1, Max: 96, HigherBetter: true},
	{Name: "Price", Unit: "$/1k calls", Min: 0.1, Max: 120, HigherBetter: false},
}

// MaxDim is the number of modelled attributes (10 in the paper's setup).
const MaxDim = 10

// Names returns the attribute names for the first d dimensions.
func Names(d int) []string {
	out := make([]string, d)
	for i := 0; i < d; i++ {
		out[i] = Attributes[i].Name
	}
	return out
}

// Generate synthesizes n services over the first d attributes
// (2 ≤ d ≤ MaxDim), oriented for minimization. It panics on an
// out-of-range d, which indicates programmer error in experiment configs.
func Generate(seed int64, n, d int) points.Set {
	if d < 1 || d > MaxDim {
		panic("qws: dimension out of range")
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		s[i] = genService(rng, d)
	}
	return s
}

// genService draws one service. A latent quality factor q ∈ (0,1) couples
// the attributes: better providers tend to be better across the board,
// with per-attribute noise providing the trade-offs that give the skyline
// its size.
func genService(rng *rand.Rand, d int) points.Point {
	// Latent provider quality, skewed: many mediocre providers, few great
	// ones (beta(2,4)-like via averaging).
	q := (rng.Float64() + rng.Float64()*3) / 4 // mean 0.5, mild central tendency
	p := make(points.Point, d)
	for j := 0; j < d; j++ {
		a := Attributes[j]
		// Per-attribute percentile: latent quality pulled by noise.
		u := clamp01(0.55*q + 0.45*rng.Float64())
		var raw float64
		if a.Unit == "ms" {
			// Time-like attributes are log-normal shaped: map percentile
			// through an exponential quantile, then clamp.
			frac := math.Expm1(3*(1-u)) / math.Expm1(3)
			raw = a.Min + frac*(a.Max-a.Min)
		} else {
			// Percentage-like attributes: mildly top-skewed.
			frac := math.Pow(u, 0.7)
			raw = a.Min + frac*(a.Max-a.Min)
		}
		raw = clampRange(raw, a.Min, a.Max)
		if a.HigherBetter {
			p[j] = a.Max - raw // orient for minimization
		} else {
			p[j] = raw - a.Min // shift so 0 is the ideal
		}
	}
	return p
}

// Extend implements the paper's dataset extension: it grows base to total
// services by resampling existing services with values "limited to a
// narrow range following the distribution of the QWS dataset" — each new
// service copies a random base service and jitters every attribute by a
// few percent of its oriented range, clamped to stay in range. The
// original base points are preserved as a prefix of the result.
func Extend(base points.Set, seed int64, total int) points.Set {
	if total <= len(base) {
		return base.Clone()[:total]
	}
	rng := rand.New(rand.NewSource(seed))
	d := base.Dim()
	out := base.Clone()
	for len(out) < total {
		src := base[rng.Intn(len(base))]
		p := make(points.Point, d)
		for j := 0; j < d; j++ {
			a := Attributes[j]
			span := orientedSpan(a)
			v := src[j] + rng.NormFloat64()*0.03*span
			p[j] = clampRange(v, 0, span)
		}
		out = append(out, p)
	}
	return out
}

// Dataset reproduces the paper's experimental inputs in one call: a base
// of 10,000 QWS-like services extended to n, projected to d attributes.
// For n ≤ 10,000 the base is generated at size n directly.
func Dataset(seed int64, n, d int) points.Set {
	const baseSize = 10000
	if n <= baseSize {
		return Generate(seed, n, d)
	}
	base := Generate(seed, baseSize, d)
	return Extend(base, seed+1, n)
}

// orientedSpan is the width of the oriented (minimization) value range of
// an attribute: oriented values run from 0 (best) to span (worst).
func orientedSpan(a Attribute) float64 { return a.Max - a.Min }

func clamp01(v float64) float64 { return math.Min(1, math.Max(0, v)) }

func clampRange(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }
