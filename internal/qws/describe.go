package qws

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/points"
)

// ColumnStats summarizes one attribute column of a dataset.
type ColumnStats struct {
	Name             string
	Min, Max         float64
	Mean, StdDev     float64
	P25, Median, P75 float64
}

// Describe computes per-column summary statistics for a dataset whose
// columns follow the Attributes order (oriented values). It is the
// dataset-characterization used by `qwsgen -describe` and by tests that
// check the synthetic generator against the published QWS shape.
func Describe(s points.Set) ([]ColumnStats, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("qws: %w", err)
	}
	d := s.Dim()
	out := make([]ColumnStats, d)
	col := make([]float64, len(s))
	for j := 0; j < d; j++ {
		sum, sumSq := 0.0, 0.0
		for i, p := range s {
			col[i] = p[j]
			sum += p[j]
			sumSq += p[j] * p[j]
		}
		mean := sum / float64(len(s))
		variance := sumSq/float64(len(s)) - mean*mean
		if variance < 0 {
			variance = 0
		}
		sort.Float64s(col)
		cs := ColumnStats{
			Min:    col[0],
			Max:    col[len(col)-1],
			Mean:   mean,
			StdDev: math.Sqrt(variance),
			P25:    quantile(col, 0.25),
			Median: quantile(col, 0.5),
			P75:    quantile(col, 0.75),
		}
		if j < len(Attributes) {
			cs.Name = Attributes[j].Name
		} else {
			cs.Name = fmt.Sprintf("col%d", j)
		}
		out[j] = cs
	}
	return out, nil
}

// CorrelationMatrix returns the Pearson correlation of every attribute
// pair. Constant columns yield NaN against others, reported as 0.
func CorrelationMatrix(s points.Set) ([][]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("qws: %w", err)
	}
	d := s.Dim()
	n := float64(len(s))
	mean := make([]float64, d)
	for _, p := range s {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	cov := make([][]float64, d)
	for j := range cov {
		cov[j] = make([]float64, d)
	}
	for _, p := range s {
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				cov[a][b] += (p[a] - mean[a]) * (p[b] - mean[b])
			}
		}
	}
	out := make([][]float64, d)
	for a := range out {
		out[a] = make([]float64, d)
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			denom := math.Sqrt(cov[a][a] * cov[b][b])
			r := 0.0
			if denom > 0 {
				r = cov[a][b] / denom
			}
			out[a][b] = r
			out[b][a] = r
		}
	}
	return out, nil
}

// WriteDescription renders stats and the correlation matrix as text.
func WriteDescription(w io.Writer, stats []ColumnStats, corr [][]float64) {
	fmt.Fprintf(w, "%-16s%10s%10s%10s%10s%10s%10s%10s\n",
		"attribute", "min", "p25", "median", "p75", "max", "mean", "stddev")
	for _, cs := range stats {
		fmt.Fprintf(w, "%-16s%10.3f%10.3f%10.3f%10.3f%10.3f%10.3f%10.3f\n",
			cs.Name, cs.Min, cs.P25, cs.Median, cs.P75, cs.Max, cs.Mean, cs.StdDev)
	}
	if corr == nil {
		return
	}
	fmt.Fprintln(w, "\npairwise correlation:")
	fmt.Fprintf(w, "%-16s", "")
	for j := range corr {
		fmt.Fprintf(w, "%8s", shortName(stats, j))
	}
	fmt.Fprintln(w)
	for a := range corr {
		fmt.Fprintf(w, "%-16s", stats[a].Name)
		for b := range corr[a] {
			fmt.Fprintf(w, "%8.2f", corr[a][b])
		}
		fmt.Fprintln(w)
	}
}

func shortName(stats []ColumnStats, j int) string {
	n := stats[j].Name
	if len(n) > 7 {
		return n[:7]
	}
	return n
}

// quantile returns the q-quantile of a sorted slice by nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
