package qws

import (
	"math"
	"testing"

	"repro/internal/skyline"
)

func TestGenerateShape(t *testing.T) {
	s := Generate(1, 1000, MaxDim)
	if len(s) != 1000 || s.Dim() != MaxDim {
		t.Fatalf("shape %dx%d", len(s), s.Dim())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(9, 200, 5)
	b := Generate(9, 200, 5)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestOrientedRanges(t *testing.T) {
	// Every oriented attribute must lie in [0, span]; 0 is the ideal.
	s := Generate(2, 5000, MaxDim)
	min, max := s.Bounds()
	for j, a := range Attributes {
		span := a.Max - a.Min
		if min[j] < 0 {
			t.Errorf("%s: oriented min %g < 0", a.Name, min[j])
		}
		if max[j] > span+1e-9 {
			t.Errorf("%s: oriented max %g > span %g", a.Name, max[j], span)
		}
	}
}

func TestPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{0, MaxDim + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Generate with d=%d did not panic", d)
				}
			}()
			Generate(1, 10, d)
		}()
	}
}

func TestMildPositiveCorrelation(t *testing.T) {
	// Oriented attributes should be positively correlated (good providers
	// good at everything) but far from perfectly — that is the QWS regime.
	s := Generate(3, 5000, 2)
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(s))
	for _, p := range s {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		syy += p[1] * p[1]
		sxy += p[0] * p[1]
	}
	r := (sxy/n - sx/n*sy/n) / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	if r < 0.1 || r > 0.9 {
		t.Errorf("attribute correlation r = %g, want mild positive (0.1..0.9)", r)
	}
}

func TestSkylineNonTrivial(t *testing.T) {
	// The skyline must be a small but non-trivial fraction of the data —
	// matching the paper's observation that local skylines are "a small
	// percent of all services".
	s := Generate(4, 2000, 4)
	sky := skyline.BNL(s)
	if len(sky) < 3 {
		t.Errorf("skyline of 2000 services has only %d points", len(sky))
	}
	if len(sky) > len(s)/4 {
		t.Errorf("skyline has %d of %d points — implausibly dense for QWS-like data", len(sky), len(s))
	}
}

func TestExtend(t *testing.T) {
	base := Generate(5, 100, 6)
	ext := Extend(base, 6, 500)
	if len(ext) != 500 {
		t.Fatalf("extended to %d, want 500", len(ext))
	}
	// Base preserved as prefix.
	for i := range base {
		if !ext[i].Equal(base[i]) {
			t.Fatalf("base point %d altered by Extend", i)
		}
	}
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
	// Jittered points must stay within oriented ranges.
	_, max := ext.Bounds()
	for j := 0; j < 6; j++ {
		span := Attributes[j].Max - Attributes[j].Min
		if max[j] > span+1e-9 {
			t.Errorf("extended dim %d exceeds span: %g > %g", j, max[j], span)
		}
	}
}

func TestExtendTruncates(t *testing.T) {
	base := Generate(7, 100, 3)
	got := Extend(base, 8, 40)
	if len(got) != 40 {
		t.Fatalf("len = %d, want 40", len(got))
	}
	got[0][0] = -1
	if base[0][0] == -1 {
		t.Error("truncating Extend aliases base")
	}
}

func TestDataset(t *testing.T) {
	small := Dataset(1, 500, 4)
	if len(small) != 500 || small.Dim() != 4 {
		t.Fatalf("small shape %dx%d", len(small), small.Dim())
	}
	big := Dataset(1, 12000, 4)
	if len(big) != 12000 {
		t.Fatalf("big len %d", len(big))
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	names := Names(3)
	if len(names) != 3 || names[0] != "ResponseTime" || names[2] != "Throughput" {
		t.Errorf("Names(3) = %v", names)
	}
}
