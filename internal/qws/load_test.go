package qws

import (
	"strings"
	"testing"
)

const sampleQWS = `# QWS Dataset sample
302.75,89,7.1,90,73,78,80,187.75,32,MapPointService,http://example.com/map?wsdl
482,85,16,95,73,100,84,1,2,CreditCheck,http://example.com/credit?wsdl
3321.4,89,1.4,96,67,78,89,2.6,95,FastQuote,http://example.com/quote?wsdl
`

func TestLoadSample(t *testing.T) {
	set, names, err := Load(strings.NewReader(sampleQWS))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 || set.Dim() != 9 {
		t.Fatalf("shape %dx%d", len(set), set.Dim())
	}
	if names[0] != "MapPointService" || names[2] != "FastQuote" {
		t.Errorf("names = %v", names)
	}
	// Orientation: response time is shifted (v - min), availability is
	// flipped (max - v).
	if got, want := set[0][0], 302.75-Attributes[0].Min; got != want {
		t.Errorf("response time oriented = %g, want %g", got, want)
	}
	if got, want := set[0][1], Attributes[1].Max-89; got != want {
		t.Errorf("availability oriented = %g, want %g", got, want)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadHeaderSkipped(t *testing.T) {
	in := "Response Time,Availability,Throughput,Successability,Reliability,Compliance,Best Practices,Latency,Documentation,Name,WSDL\n" + sampleQWS
	set, _, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Errorf("rows = %d, want 3 (header skipped)", len(set))
	}
}

func TestLoadWithoutNames(t *testing.T) {
	in := "302.75,89,7.1,90,73,78,80,187.75,32\n"
	set, names, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || names[0] == "" {
		t.Errorf("set=%d names=%v", len(set), names)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Load(strings.NewReader("1,2,3\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, _, err := Load(strings.NewReader("302.75,89,x,90,73,78,80,187.75,32\n")); err == nil {
		t.Error("non-numeric row accepted")
	}
}

func TestLoadClampsOutOfRange(t *testing.T) {
	// A response time above the published max is clamped, not rejected —
	// real measurement files contain stragglers.
	in := "999999,89,7.1,90,73,78,80,187.75,32,Svc,addr\n"
	set, _, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := set[0][0], Attributes[0].Max-Attributes[0].Min; got != want {
		t.Errorf("clamped = %g, want %g", got, want)
	}
}
