package qws

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/points"
)

func TestDescribeKnownData(t *testing.T) {
	s := points.Set{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}}
	stats, err := Describe(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d columns", len(stats))
	}
	c := stats[0]
	if c.Min != 1 || c.Max != 5 || math.Abs(c.Mean-3) > 1e-12 || c.Median != 3 {
		t.Errorf("col0 = %+v", c)
	}
	if math.Abs(c.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %g, want sqrt(2)", c.StdDev)
	}
	if c.Name != Attributes[0].Name {
		t.Errorf("name = %q", c.Name)
	}
}

func TestDescribeErrors(t *testing.T) {
	if _, err := Describe(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := CorrelationMatrix(nil); err == nil {
		t.Error("empty set accepted by correlation")
	}
}

func TestCorrelationMatrix(t *testing.T) {
	// Perfectly correlated, anti-correlated and constant columns.
	s := points.Set{
		{1, 1, -1, 7},
		{2, 2, -2, 7},
		{3, 3, -3, 7},
	}
	corr, err := CorrelationMatrix(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corr[0][1]-1) > 1e-9 {
		t.Errorf("corr(0,1) = %g, want 1", corr[0][1])
	}
	if math.Abs(corr[0][2]+1) > 1e-9 {
		t.Errorf("corr(0,2) = %g, want -1", corr[0][2])
	}
	if corr[0][3] != 0 {
		t.Errorf("corr with constant = %g, want 0", corr[0][3])
	}
	if corr[1][0] != corr[0][1] {
		t.Error("matrix not symmetric")
	}
	if math.Abs(corr[0][0]-1) > 1e-9 {
		t.Errorf("diagonal = %g", corr[0][0])
	}
}

func TestDescribeGeneratedDatasetShape(t *testing.T) {
	// The synthetic generator must respect the published oriented ranges
	// and produce mildly positively-correlated attributes.
	s := Generate(13, 5000, 5)
	stats, err := Describe(s)
	if err != nil {
		t.Fatal(err)
	}
	for j, cs := range stats {
		span := Attributes[j].Max - Attributes[j].Min
		if cs.Min < 0 || cs.Max > span+1e-9 {
			t.Errorf("%s outside oriented range: [%g, %g] vs span %g", cs.Name, cs.Min, cs.Max, span)
		}
		if cs.StdDev == 0 {
			t.Errorf("%s is constant", cs.Name)
		}
	}
	corr, err := CorrelationMatrix(s)
	if err != nil {
		t.Fatal(err)
	}
	sum, pairs := 0.0, 0
	for a := 0; a < len(corr); a++ {
		for b := a + 1; b < len(corr); b++ {
			sum += corr[a][b]
			pairs++
		}
	}
	if avg := sum / float64(pairs); avg < 0.05 || avg > 0.9 {
		t.Errorf("average pairwise correlation %g outside mild-positive band", avg)
	}
}

func TestWriteDescription(t *testing.T) {
	s := Generate(14, 200, 3)
	stats, err := Describe(s)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CorrelationMatrix(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteDescription(&buf, stats, corr)
	out := buf.String()
	for _, want := range []string{"attribute", "ResponseTime", "pairwise correlation"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in description:\n%s", want, out)
		}
	}
	// Without correlation matrix.
	buf.Reset()
	WriteDescription(&buf, stats, nil)
	if strings.Contains(buf.String(), "pairwise") {
		t.Error("correlation section printed without matrix")
	}
}
