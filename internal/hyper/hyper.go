// Package hyper implements the Cartesian ↔ hyperspherical coordinate
// transform of the paper's Eq. (1) and (2), used by the angular
// partitioner.
//
// For an n-dimensional point s = (v1, ..., vn) the hyperspherical
// coordinates are the radius
//
//	r = sqrt(v1² + ... + vn²)
//
// and n−1 angles defined by
//
//	tan(φ1)   = sqrt(v2² + ... + vn²) / v1
//	tan(φ2)   = sqrt(v3² + ... + vn²) / v2
//	...
//	tan(φn−1) = vn / vn−1
//
// For non-negative data (the QoS setting) every angle lies in [0, π/2];
// the partitioner relies on that range. Points with all-zero suffixes are
// assigned angle 0 by convention, and a zero denominator with a positive
// numerator yields π/2, both consistent with the atan2 limit.
package hyper

import (
	"fmt"
	"math"

	"repro/internal/points"
)

// Coordinates holds a point in hyperspherical form.
type Coordinates struct {
	R      float64   // radial coordinate
	Angles []float64 // n−1 angular coordinates, each in [0, π/2] for non-negative input
}

// ToHyperspherical converts a Cartesian point of dimension ≥ 2 to
// hyperspherical coordinates. It returns an error for points of dimension
// < 2 (there is no angle to partition on) or non-finite input.
func ToHyperspherical(p points.Point) (Coordinates, error) {
	if err := p.Validate(); err != nil {
		return Coordinates{}, err
	}
	n := len(p)
	if n < 2 {
		return Coordinates{}, fmt.Errorf("hyper: need dimension >= 2, got %d", n)
	}
	// suffix[i] = sqrt(p[i]² + ... + p[n−1]²), computed back to front from
	// a running sum of squares. One Sqrt per element instead of the Hypot
	// chain — Hypot's overflow guard costs ~4× per call and QoS data is
	// nowhere near the ±1e154 range where the guard matters (the transform
	// of such input degrades to +Inf radius and π/2 angles, still finite
	// and bucketable).
	suffix := make([]float64, n+1)
	s := 0.0
	for i := n - 1; i >= 0; i-- {
		s += p[i] * p[i]
		suffix[i] = math.Sqrt(s)
	}
	c := Coordinates{R: suffix[0], Angles: make([]float64, n-1)}
	for i := 0; i < n-1; i++ {
		// tan(φi) = suffix[i+1] / p[i]; atan2 handles p[i] == 0.
		c.Angles[i] = math.Atan2(suffix[i+1], p[i])
	}
	return c, nil
}

// FromHyperspherical converts back to Cartesian coordinates. For input
// produced by ToHyperspherical from non-negative data the round trip is
// exact up to floating-point error.
func FromHyperspherical(c Coordinates) points.Point {
	n := len(c.Angles) + 1
	p := make(points.Point, n)
	// v1 = r cos φ1
	// v2 = r sin φ1 cos φ2
	// ...
	// vn = r sin φ1 ... sin φn−1
	prod := c.R
	for i := 0; i < n-1; i++ {
		p[i] = prod * math.Cos(c.Angles[i])
		prod *= math.Sin(c.Angles[i])
	}
	p[n-1] = prod
	return p
}

// MaxAngle is the upper bound of each angular coordinate for non-negative
// data.
const MaxAngle = math.Pi / 2

// AnglesOf is a convenience wrapper returning only the angular coordinates.
func AnglesOf(p points.Point) ([]float64, error) {
	c, err := ToHyperspherical(p)
	if err != nil {
		return nil, err
	}
	return c.Angles, nil
}
