package hyper

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/points"
)

func TestKnown2D(t *testing.T) {
	// Paper Eq. (2): r = sqrt(x²+y²), tan(φ) = y/x.
	c, err := ToHyperspherical(points.Point{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.R-5) > 1e-12 {
		t.Errorf("r = %g, want 5", c.R)
	}
	if len(c.Angles) != 1 {
		t.Fatalf("angles = %v, want 1 angle", c.Angles)
	}
	if want := math.Atan2(4, 3); math.Abs(c.Angles[0]-want) > 1e-12 {
		t.Errorf("φ = %g, want %g", c.Angles[0], want)
	}
}

func TestAxisPoints(t *testing.T) {
	// On the x-axis: angle 0. On the y-axis: angle π/2.
	c, err := ToHyperspherical(points.Point{7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Angles[0] != 0 {
		t.Errorf("x-axis angle = %g, want 0", c.Angles[0])
	}
	c, err = ToHyperspherical(points.Point{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Angles[0]-math.Pi/2) > 1e-12 {
		t.Errorf("y-axis angle = %g, want π/2", c.Angles[0])
	}
}

func TestOrigin(t *testing.T) {
	// All-zero point: radius 0; angles are degenerate but must be finite
	// and in range so the partitioner can still bucket the point.
	c, err := ToHyperspherical(points.Point{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.R != 0 {
		t.Errorf("r = %g, want 0", c.R)
	}
	for i, a := range c.Angles {
		if math.IsNaN(a) || a < 0 || a > MaxAngle {
			t.Errorf("angle %d = %g out of [0, π/2]", i, a)
		}
	}
}

func TestDiagonal3D(t *testing.T) {
	c, err := ToHyperspherical(points.Point{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.R-math.Sqrt(3)) > 1e-12 {
		t.Errorf("r = %g, want sqrt(3)", c.R)
	}
	// φ1 = atan(sqrt(2)/1), φ2 = atan(1/1) = π/4.
	if want := math.Atan(math.Sqrt2); math.Abs(c.Angles[0]-want) > 1e-12 {
		t.Errorf("φ1 = %g, want %g", c.Angles[0], want)
	}
	if math.Abs(c.Angles[1]-math.Pi/4) > 1e-12 {
		t.Errorf("φ2 = %g, want π/4", c.Angles[1])
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, err := ToHyperspherical(points.Point{1}); err == nil {
		t.Error("1-dim point accepted")
	}
	if _, err := ToHyperspherical(points.Point{}); err == nil {
		t.Error("0-dim point accepted")
	}
	if _, err := ToHyperspherical(points.Point{math.NaN(), 1}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestAnglesInRangeForNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		d := 2 + rng.Intn(9)
		p := make(points.Point, d)
		for i := range p {
			p[i] = rng.Float64() * 1000
		}
		c, err := ToHyperspherical(p)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range c.Angles {
			if a < 0 || a > MaxAngle+1e-12 {
				t.Fatalf("angle %d = %g out of [0, π/2] for %v", i, a, p)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		d := 2 + rng.Intn(9)
		p := make(points.Point, d)
		for i := range p {
			p[i] = rng.Float64() * 100
		}
		c, err := ToHyperspherical(p)
		if err != nil {
			t.Fatal(err)
		}
		back := FromHyperspherical(c)
		if len(back) != d {
			t.Fatalf("round trip changed dimension: %d -> %d", d, len(back))
		}
		for i := range p {
			if math.Abs(back[i]-p[i]) > 1e-9*(1+math.Abs(p[i])) {
				t.Fatalf("round trip mismatch dim %d: %g vs %g (point %v)", i, back[i], p[i], p)
			}
		}
	}
}

func TestRadiusMatchesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		d := 2 + rng.Intn(8)
		p := make(points.Point, d)
		for i := range p {
			p[i] = rng.Float64() * 50
		}
		c, err := ToHyperspherical(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c.R-p.Norm()) > 1e-9*(1+p.Norm()) {
			t.Fatalf("r = %g, norm = %g", c.R, p.Norm())
		}
	}
}

// Scaling a point must leave its angles unchanged (angles depend only on
// direction) — this is the invariant that makes angular partitioning put
// high-quality and low-quality services of the same trade-off profile into
// the same sector.
func TestAnglesScaleInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 1000; trial++ {
		d := 2 + rng.Intn(6)
		p := make(points.Point, d)
		for i := range p {
			p[i] = rng.Float64()*10 + 0.01
		}
		k := rng.Float64()*9 + 0.5
		scaled := make(points.Point, d)
		for i := range p {
			scaled[i] = p[i] * k
		}
		a1, err := AnglesOf(p)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := AnglesOf(scaled)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1 {
			if math.Abs(a1[i]-a2[i]) > 1e-9 {
				t.Fatalf("angle %d changed under scaling by %g: %g vs %g", i, k, a1[i], a2[i])
			}
		}
	}
}

func BenchmarkToHyperspherical(b *testing.B) {
	p := points.Point{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ToHyperspherical(p); err != nil {
			b.Fatal(err)
		}
	}
}
