package partition

import (
	"testing"

	"repro/internal/points"
	"repro/internal/qws"
)

func TestFitAngularRadialStructure(t *testing.T) {
	data := qws.Dataset(27, 3000, 4)
	p, err := FitAngularRadial(data, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partitions() != p.Sectors()*3 {
		t.Fatalf("partitions = %d, sectors = %d", p.Partitions(), p.Sectors())
	}
	counts, err := Histogram(p, data)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	empty := 0
	for _, c := range counts {
		total += c
		if c == 0 {
			empty++
		}
	}
	if total != len(data) {
		t.Errorf("histogram total %d, want %d", total, len(data))
	}
	// Equi-depth sectors × equi-depth shells: balance must be decent.
	if r := ImbalanceRatio(counts); r > 2.0 {
		t.Errorf("imbalance %.2f (%v)", r, counts)
	}
	if empty > 0 {
		t.Errorf("%d empty partitions", empty)
	}
}

func TestFitAngularRadialValidation(t *testing.T) {
	data := qws.Dataset(28, 100, 3)
	if _, err := FitAngularRadial(data, 4, 0); err == nil {
		t.Error("zero shells accepted")
	}
	if _, err := FitAngularRadial(nil, 4, 2); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitAngularRadial(points.Set{{1}}, 2, 2); err == nil {
		t.Error("1-dim data accepted")
	}
}

func TestAngularRadialShellsOrderedByRadius(t *testing.T) {
	// Points on one ray: larger radius must never land in a smaller shell.
	data := qws.Dataset(29, 2000, 3)
	p, err := FitAngularRadial(data, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	min, _ := data.Bounds()
	base := points.Point{min[0] + 2, min[1] + 3, min[2] + 1}
	prevShell := -1
	for _, k := range []float64{0.5, 1, 2, 4, 8, 16} {
		pt := make(points.Point, 3)
		for i := range pt {
			pt[i] = min[i] + (base[i]-min[i])*k
		}
		id, err := p.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		shell := id % 4
		sector := id / 4
		if prevShell >= 0 && shell < prevShell {
			t.Fatalf("shell decreased along the ray: %d after %d", shell, prevShell)
		}
		prevShell = shell
		// All ray points share the sector (angles unchanged).
		wantSector, err := p.angular.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		if sector != wantSector {
			t.Fatalf("sector %d, angular says %d", sector, wantSector)
		}
	}
}

func TestShellsOneEqualsAngular(t *testing.T) {
	data := qws.Dataset(30, 800, 3)
	hybrid, err := FitAngularRadial(data, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := FitAngular(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range data[:200] {
		a, err := hybrid.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pure.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("1-shell hybrid differs from pure angular for %v", pt)
		}
	}
}
