package partition

import (
	"math"
	"testing"

	"repro/internal/points"
	"repro/internal/qws"
)

func TestFitAngularBalancesRealisticData(t *testing.T) {
	// The motivating failure: high-dimensional QoS data concentrates in a
	// narrow angle band, leaving most equal-width sectors empty. The
	// fitted (equi-depth) partitioner must occupy every sector.
	data := qws.Dataset(7, 4000, 6)
	fitted, err := FitAngular(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := Histogram(fitted, data)
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range counts {
		if c == 0 {
			t.Errorf("fitted sector %d empty", id)
		}
	}
	if r := ImbalanceRatio(counts); r > 1.6 {
		t.Errorf("fitted imbalance %.2f too high (%v)", r, counts)
	}

	min, _ := data.Bounds()
	equal, err := NewAngular(min, data.Dim(), 8)
	if err != nil {
		t.Fatal(err)
	}
	eqCounts, err := Histogram(equal, data)
	if err != nil {
		t.Fatal(err)
	}
	if ImbalanceRatio(eqCounts) <= ImbalanceRatio(counts) {
		t.Errorf("equal-width imbalance %.2f not worse than fitted %.2f",
			ImbalanceRatio(eqCounts), ImbalanceRatio(counts))
	}
}

func TestFitAngularPreservesRayInvariance(t *testing.T) {
	data := qws.Dataset(8, 1000, 4)
	fitted, err := FitAngular(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	min, _ := data.Bounds()
	// Take a ray from the fitted origin; all its points share a sector.
	base := points.Point{min[0] + 3, min[1] + 5, min[2] + 2, min[3] + 4}
	want, err := fitted.Assign(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.5, 2, 7} {
		scaled := make(points.Point, 4)
		for i := range scaled {
			scaled[i] = min[i] + (base[i]-min[i])*k
		}
		got, err := fitted.Assign(scaled)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ray point at scale %g in sector %d, want %d", k, got, want)
		}
	}
}

func TestAngularCutsRoundTrip(t *testing.T) {
	data := qws.Dataset(9, 2000, 5)
	fitted, err := FitAngular(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	min, _ := data.Bounds()
	rebuilt, err := NewAngularWithCuts(min, fitted.Splits(), fitted.Cuts())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Partitions() != fitted.Partitions() {
		t.Fatalf("partitions %d vs %d", rebuilt.Partitions(), fitted.Partitions())
	}
	for _, pt := range data[:500] {
		a, err := fitted.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuilt.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("assignment mismatch for %v: %d vs %d", pt, a, b)
		}
	}
	// Cuts must be deep copies.
	cuts := fitted.Cuts()
	if cuts[0] != nil && len(cuts[0][0]) > 0 {
		cuts[0][0][0] = math.Pi
		if fitted.Cuts()[0][0][0] == math.Pi {
			t.Error("Cuts aliases internal state")
		}
	}
}

func TestNewAngularWithCutsValidation(t *testing.T) {
	offset := points.Point{0, 0, 0}
	if _, err := NewAngularWithCuts(points.Point{0}, []int{2}, nil); err == nil {
		t.Error("1-dim offset accepted")
	}
	if _, err := NewAngularWithCuts(offset, []int{2}, nil); err == nil {
		t.Error("wrong split count accepted")
	}
	if _, err := NewAngularWithCuts(offset, []int{2, 0}, nil); err == nil {
		t.Error("zero split accepted")
	}
	if _, err := NewAngularWithCuts(offset, []int{2, 2}, [][][]float64{{{0.5}}}); err == nil {
		t.Error("short cut level list accepted")
	}
	if _, err := NewAngularWithCuts(offset, []int{2, 2}, [][][]float64{{{0.5}}, nil}); err == nil {
		t.Error("missing cuts for split>1 accepted")
	}
	if _, err := NewAngularWithCuts(offset, []int{3, 1}, [][][]float64{{{0.9, 0.2}}, nil}); err == nil {
		t.Error("unsorted cuts accepted")
	}
	if _, err := NewAngularWithCuts(offset, []int{2, 2}, [][][]float64{{{0.5}}, {{0.4}}}); err == nil {
		t.Error("level with too few cells accepted")
	}
	p, err := NewAngularWithCuts(offset, []int{4, 2}, [][][]float64{
		{{0.3, 0.6, 0.9}},
		{{0.7}, {0.6}, {0.5}, {0.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Partitions() != 8 {
		t.Errorf("partitions = %d, want 8", p.Partitions())
	}
	id, err := p.Assign(points.Point{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if id < 0 || id >= 8 {
		t.Errorf("id %d out of range", id)
	}
}

func TestFitAngularDegenerateData(t *testing.T) {
	// All points identical: all quantile cuts equal; every point must
	// still be assigned to a single valid sector.
	data := points.Set{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	p, err := FitAngular(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Assign(points.Point{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if id < 0 || id >= p.Partitions() {
		t.Errorf("id %d out of range", id)
	}
	if _, err := FitAngular(points.Set{{1}}, 4); err == nil {
		t.Error("1-dim data accepted")
	}
	if _, err := FitAngular(nil, 4); err == nil {
		t.Error("empty data accepted")
	}
}

func TestFitAngularSampledQuality(t *testing.T) {
	data := qws.Dataset(17, 20000, 5)
	exact, err := FitAngular(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := FitAngularSampled(data, 8, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	exactCounts, err := Histogram(exact, data)
	if err != nil {
		t.Fatal(err)
	}
	sampledCounts, err := Histogram(sampled, data)
	if err != nil {
		t.Fatal(err)
	}
	re, rs := ImbalanceRatio(exactCounts), ImbalanceRatio(sampledCounts)
	// The sampled fit may be a little worse but must stay in the same
	// league (and far from the equal-width collapse).
	if rs > re*1.5+0.5 {
		t.Errorf("sampled imbalance %.2f vs exact %.2f", rs, re)
	}
	for id, c := range sampledCounts {
		if c == 0 {
			t.Errorf("sampled fit left sector %d empty", id)
		}
	}
}

func TestFitAngularSampledSmallData(t *testing.T) {
	// Sample size >= data size falls back to the exact fit.
	data := qws.Dataset(18, 300, 3)
	a, err := FitAngularSampled(data, 4, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitAngular(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range data[:100] {
		ia, err := a.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := b.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		if ia != ib {
			t.Fatalf("fallback fit differs from exact fit for %v", pt)
		}
	}
	if _, err := FitAngularSampled(nil, 4, 100, 1); err == nil {
		t.Error("empty data accepted")
	}
}
