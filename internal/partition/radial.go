package partition

import (
	"fmt"
	"sort"

	"repro/internal/points"
)

// AngularRadialPartitioner is the hybrid the paper implicitly argues
// *against*: sectors by angle (as MR-Angle) further split into radial
// shells by distance from the origin. Shells multiply the partition count
// without adding angular resolution — but each shell holds one quality
// band of its sector, so inner shells dominate outer ones wholesale, local
// skylines of outer shells are globally worthless, and the optimality
// metric collapses toward MR-Grid's. It exists as the ablation that makes
// the paper's "sectors must span the full quality gradient" argument
// measurable.
type AngularRadialPartitioner struct {
	angular *AngularPartitioner
	// shellCuts[sector] holds shells−1 increasing radius boundaries fitted
	// per sector (equi-depth).
	shellCuts [][]float64
	shells    int
}

// FitAngularRadial fits sectors×shells partitions: `sectors` angular
// sectors (recursive equi-depth, as FitAngular) each split into `shells`
// equi-depth radial shells.
func FitAngularRadial(data points.Set, sectors, shells int) (*AngularRadialPartitioner, error) {
	if shells < 1 {
		return nil, fmt.Errorf("partition: shells %d, need >= 1", shells)
	}
	ang, err := FitAngular(data, sectors)
	if err != nil {
		return nil, err
	}
	// Collect radii per sector.
	radii := make([][]float64, ang.Partitions())
	for _, p := range data {
		id, err := ang.Assign(p)
		if err != nil {
			return nil, err
		}
		shifted := make(points.Point, len(p))
		for i := range p {
			shifted[i] = p[i] - ang.offset[i]
		}
		radii[id] = append(radii[id], shifted.Norm())
	}
	cuts := make([][]float64, ang.Partitions())
	for sector, rs := range radii {
		sort.Float64s(rs)
		c := make([]float64, shells-1)
		for q := 1; q < shells; q++ {
			if len(rs) == 0 {
				c[q-1] = 0
				continue
			}
			idx := q * len(rs) / shells
			if idx >= len(rs) {
				idx = len(rs) - 1
			}
			c[q-1] = rs[idx]
		}
		cuts[sector] = c
	}
	return &AngularRadialPartitioner{angular: ang, shellCuts: cuts, shells: shells}, nil
}

// Name implements Partitioner.
func (a *AngularRadialPartitioner) Name() string { return "MR-AngleRadial" }

// Partitions implements Partitioner.
func (a *AngularRadialPartitioner) Partitions() int {
	return a.angular.Partitions() * a.shells
}

// Assign implements Partitioner.
func (a *AngularRadialPartitioner) Assign(p points.Point) (int, error) {
	sector, err := a.angular.Assign(p)
	if err != nil {
		return 0, err
	}
	shifted := make(points.Point, len(p))
	for i := range p {
		v := p[i] - a.angular.offset[i]
		if v < 0 {
			v = 0
		}
		shifted[i] = v
	}
	r := shifted.Norm()
	cuts := a.shellCuts[sector]
	shell := sort.SearchFloat64s(cuts, r)
	for shell < len(cuts) && cuts[shell] == r {
		shell++
	}
	return sector*a.shells + shell, nil
}

// Sectors returns the underlying angular partition count.
func (a *AngularRadialPartitioner) Sectors() int { return a.angular.Partitions() }

// The shell radius is the hyperspherical r of the paper's Eq. (1),
// measured from the fitted origin.
var _ Partitioner = (*AngularRadialPartitioner)(nil)
