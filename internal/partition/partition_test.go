package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/points"
)

func uniformSet(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		s[i] = p
	}
	return s
}

func TestSchemeString(t *testing.T) {
	if Dimensional.String() != "MR-Dim" || Grid.String() != "MR-Grid" ||
		Angular.String() != "MR-Angle" || Random.String() != "MR-Random" {
		t.Error("unexpected scheme names")
	}
	if Scheme(42).String() != "Unknown" {
		t.Error("unknown scheme name")
	}
	if len(Schemes()) != 3 {
		t.Error("Schemes() must list the paper's three methods")
	}
}

func TestSplitCounts(t *testing.T) {
	tests := []struct {
		m, want int
		product int
	}{
		{1, 4, 4},
		{2, 4, 4},   // 2×2, the paper's figure
		{2, 8, 8},   // 4×2
		{3, 8, 8},   // 2×2×2
		{9, 8, 8},   // 2×2×2×1×1×1×1×1×1
		{2, 5, 8},   // rounds up to next reachable product
		{1, 1, 1},   // degenerate
		{10, 1, 1},  // no splits at all
		{2, 16, 16}, // 4×4
	}
	for _, tt := range tests {
		got := splitCounts(tt.m, tt.want)
		if len(got) != tt.m {
			t.Errorf("splitCounts(%d, %d) has %d axes", tt.m, tt.want, len(got))
		}
		if p := product(got); p != tt.product {
			t.Errorf("splitCounts(%d, %d) product = %d (%v), want %d", tt.m, tt.want, p, got, tt.product)
		}
		// Balance: no axis should exceed twice another.
		lo, hi := got[0], got[0]
		for _, s := range got {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi > 2*lo {
			t.Errorf("splitCounts(%d, %d) unbalanced: %v", tt.m, tt.want, got)
		}
	}
}

func TestBucketClamps(t *testing.T) {
	if b := bucket(-5, 0, 10, 4); b != 0 {
		t.Errorf("below-range bucket = %d", b)
	}
	if b := bucket(15, 0, 10, 4); b != 3 {
		t.Errorf("above-range bucket = %d", b)
	}
	if b := bucket(10, 0, 10, 4); b != 3 {
		t.Errorf("at-max bucket = %d", b)
	}
	if b := bucket(5, 5, 5, 4); b != 0 {
		t.Errorf("degenerate-range bucket = %d", b)
	}
}

func TestDimensionalAssign(t *testing.T) {
	p, err := NewDimensional(0, 0, 100, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pt   points.Point
		want int
	}{
		{points.Point{0, 50}, 0},
		{points.Point{24.9, 0}, 0},
		{points.Point{25, 0}, 1},
		{points.Point{99, 1}, 3},
		{points.Point{100, 1}, 3}, // clamped at the top
	}
	for _, c := range cases {
		got, err := p.Assign(c.pt)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Assign(%v) = %d, want %d", c.pt, got, c.want)
		}
	}
}

func TestDimensionalErrors(t *testing.T) {
	if _, err := NewDimensional(2, 0, 1, 4, 2); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if _, err := NewDimensional(0, 5, 1, 4, 2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewDimensional(0, 0, 1, 0, 2); err == nil {
		t.Error("zero partitions accepted")
	}
	p, _ := NewDimensional(0, 0, 1, 4, 2)
	if _, err := p.Assign(points.Point{0.5}); err == nil {
		t.Error("wrong-dimension point accepted")
	}
	if _, err := p.Assign(points.Point{math.NaN(), 1}); err == nil {
		t.Error("NaN point accepted")
	}
}

func TestGridAssignAndCorners(t *testing.T) {
	g, err := NewGrid(points.Point{0, 0}, points.Point{100, 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Partitions() != 4 {
		t.Fatalf("partitions = %d, want 4", g.Partitions())
	}
	// 2×2 grid: quadrant identities.
	ids := map[string]int{}
	for name, pt := range map[string]points.Point{
		"bottom-left":  {10, 10},
		"bottom-right": {90, 10},
		"top-left":     {10, 90},
		"top-right":    {90, 90},
	} {
		id, err := g.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	seen := map[int]bool{}
	for name, id := range ids {
		if seen[id] {
			t.Errorf("quadrant %s shares a cell id", name)
		}
		seen[id] = true
	}
	lo, hi := g.cellCorners(ids["bottom-left"])
	if !lo.Equal(points.Point{0, 0}) || !hi.Equal(points.Point{50, 50}) {
		t.Errorf("bottom-left corners = %v, %v", lo, hi)
	}
}

func TestGridPrunable(t *testing.T) {
	g, err := NewGrid(points.Point{0, 0}, points.Point{100, 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	bl, _ := g.Assign(points.Point{10, 10})
	tr, _ := g.Assign(points.Point{90, 90})
	br, _ := g.Assign(points.Point{90, 10})
	tl, _ := g.Assign(points.Point{10, 90})

	occupied := make([]bool, g.Partitions())
	occupied[bl], occupied[tr], occupied[br], occupied[tl] = true, true, true, true
	pruned := g.Prunable(occupied)
	if !pruned[tr] {
		t.Error("top-right cell not pruned despite occupied bottom-left (paper's 25% case)")
	}
	if pruned[bl] || pruned[br] || pruned[tl] {
		t.Errorf("side cells wrongly pruned: bl=%v br=%v tl=%v", pruned[bl], pruned[br], pruned[tl])
	}

	// Without the bottom-left cell occupied, nothing dominates top-right.
	occupied[bl] = false
	pruned = g.Prunable(occupied)
	if pruned[tr] {
		t.Error("top-right pruned with no dominating occupied cell")
	}
}

func TestGridPrunableIsSound(t *testing.T) {
	// Property: every point in a pruned cell is strictly dominated by some
	// point in another cell.
	rng := rand.New(rand.NewSource(77))
	s := uniformSet(77, 500, 3)
	g, err := NewGrid(points.Point{0, 0, 0}, points.Point{100, 100, 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, len(s))
	occupied := make([]bool, g.Partitions())
	for i, pt := range s {
		id, err := g.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		assign[i] = id
		occupied[id] = true
	}
	pruned := g.Prunable(occupied)
	for i, pt := range s {
		if !pruned[assign[i]] {
			continue
		}
		dominated := false
		for j, q := range s {
			if assign[j] != assign[i] && points.Dominates(q, pt) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("point %v in pruned cell %d is not dominated", pt, assign[i])
		}
	}
	_ = rng
}

func TestAngular2DSectors(t *testing.T) {
	// 4 sectors over [0, π/2]: the sector index must grow with y/x.
	a, err := NewAngular(points.Point{0, 0}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Partitions() != 4 {
		t.Fatalf("partitions = %d, want 4", a.Partitions())
	}
	prev := -1
	for _, pt := range []points.Point{{100, 1}, {100, 60}, {60, 100}, {1, 100}} {
		id, err := a.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		if id <= prev {
			t.Errorf("sector ids not monotone in angle: %v -> %d after %d", pt, id, prev)
		}
		prev = id
	}
}

func TestAngularSectorContainsQualityGradient(t *testing.T) {
	// Points on the same ray (same trade-off profile, different quality)
	// must share a sector — the property the paper credits for MR-Angle's
	// balanced local skylines.
	a, err := NewAngular(points.Point{0, 0, 0}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := points.Point{3, 5, 2}
	want, err := a.Assign(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.1, 0.5, 2, 10, 100} {
		scaled := points.Point{base[0] * k, base[1] * k, base[2] * k}
		got, err := a.Assign(scaled)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("scaled point %v in sector %d, ray base in %d", scaled, got, want)
		}
	}
}

func TestAngularOffsetTranslation(t *testing.T) {
	// Negative data is translated; assignment must succeed and cover
	// multiple sectors.
	s := points.Set{{-10, -10}, {-10, 10}, {10, -10}, {5, 5}}
	a, err := NewAngular(points.Point{-10, -10}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, pt := range s {
		id, err := a.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		if id < 0 || id >= a.Partitions() {
			t.Fatalf("id %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Errorf("translated data collapsed into %d sector(s)", len(seen))
	}
}

func TestAngularErrors(t *testing.T) {
	if _, err := NewAngular(points.Point{0}, 1, 4); err == nil {
		t.Error("1-dim angular accepted")
	}
	if _, err := NewAngular(points.Point{0, 0, 0}, 2, 4); err == nil {
		t.Error("mismatched offset accepted")
	}
	a, _ := NewAngular(points.Point{0, 0}, 2, 4)
	if _, err := a.Assign(points.Point{1, 2, 3}); err == nil {
		t.Error("wrong-dimension point accepted")
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	r, err := NewRandom(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	pt := points.Point{1, 2, 3}
	id1, err := r.Assign(pt)
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := r.Assign(pt)
	if id1 != id2 {
		t.Error("random partitioner not deterministic")
	}
	s := uniformSet(3, 2000, 3)
	counts, err := Histogram(r, s)
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range counts {
		if c == 0 {
			t.Errorf("partition %d empty over 2000 uniform points", id)
		}
	}
	if ImbalanceRatio(counts) > 1.5 {
		t.Errorf("hash partitioner imbalance %g too high", ImbalanceRatio(counts))
	}
}

func TestNewFitsAllSchemes(t *testing.T) {
	s := uniformSet(1, 500, 4)
	for _, scheme := range []Scheme{Dimensional, Grid, Angular, Random} {
		p, err := New(scheme, s, 8)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if p.Partitions() < 8 && scheme != Dimensional {
			t.Errorf("%v: %d partitions < 8", scheme, p.Partitions())
		}
		counts, err := Histogram(p, s)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(s) {
			t.Errorf("%v: histogram total %d != %d", scheme, total, len(s))
		}
	}
}

func TestNewErrors(t *testing.T) {
	s := uniformSet(1, 10, 2)
	if _, err := New(Scheme(99), s, 4); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := New(Grid, nil, 4); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := New(Grid, s, 0); err == nil {
		t.Error("zero partitions accepted")
	}
}

// The headline structural claim of the paper: angular partitions all
// intersect the global skyline region, so local skyline sizes are far more
// balanced than grid's, where the top-right region is pure garbage.
func TestAngularBalancesSkylineExposure(t *testing.T) {
	s := uniformSet(99, 4000, 2)
	ang, err := New(Angular, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := New(Grid, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Count, per partitioner, how many partitions contain at least one
	// point with small norm (quality side) and one with large norm.
	check := func(p Partitioner) int {
		type minmax struct{ lo, hi float64 }
		agg := map[int]*minmax{}
		for _, pt := range s {
			id, err := p.Assign(pt)
			if err != nil {
				t.Fatal(err)
			}
			m, ok := agg[id]
			if !ok {
				m = &minmax{math.Inf(1), math.Inf(-1)}
				agg[id] = m
			}
			n := pt.Norm()
			if n < m.lo {
				m.lo = n
			}
			if n > m.hi {
				m.hi = n
			}
		}
		full := 0
		for _, m := range agg {
			if m.lo < 40 && m.hi > 100 {
				full++
			}
		}
		return full
	}
	angFull, gridFull := check(ang), check(grid)
	if angFull < ang.Partitions() {
		t.Errorf("only %d/%d angular sectors span the quality gradient", angFull, ang.Partitions())
	}
	if gridFull >= grid.Partitions() {
		t.Errorf("grid unexpectedly spans the gradient in all %d cells", gridFull)
	}
}

func TestImbalanceRatio(t *testing.T) {
	if r := ImbalanceRatio([]int{10, 10, 10, 10}); math.Abs(r-1) > 1e-12 {
		t.Errorf("balanced ratio = %g", r)
	}
	if r := ImbalanceRatio([]int{40, 0, 0, 0}); math.Abs(r-4) > 1e-12 {
		t.Errorf("skewed ratio = %g", r)
	}
	if r := ImbalanceRatio(nil); r != 0 {
		t.Errorf("nil ratio = %g", r)
	}
	if r := ImbalanceRatio([]int{0, 0}); r != 0 {
		t.Errorf("all-zero ratio = %g", r)
	}
}

func BenchmarkAssign(b *testing.B) {
	s := uniformSet(1, 1, 10)
	pt := s[0]
	full := uniformSet(2, 100, 10)
	for _, scheme := range []Scheme{Dimensional, Grid, Angular, Random} {
		p, err := New(scheme, full, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(scheme.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Assign(pt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
