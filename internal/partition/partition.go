// Package partition implements the three data-space partitioning schemes
// compared in the paper — dimensional (MR-Dim), grid (MR-Grid) and angular
// (MR-Angle) — plus a random baseline. A Partitioner assigns every point of
// the data space to one of a fixed number of partitions; the MapReduce
// skyline jobs compute a local skyline per partition and merge them.
package partition

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/hyper"
	"repro/internal/points"
)

// Scheme identifies a partitioning scheme.
type Scheme int

const (
	// Dimensional splits the data space into equal ranges along a single
	// dimension (paper §III-A, MR-Dim).
	Dimensional Scheme = iota
	// Grid splits every dimension into equal ranges, forming a Cartesian
	// grid of cells (paper §III-B, MR-Grid).
	Grid
	// Angular maps points to hyperspherical coordinates and grids the
	// angular subspace (paper §III-C, MR-Angle — the new method).
	Angular
	// Random assigns points to partitions by a coordinate hash; an extra
	// baseline not in the paper, useful for ablations.
	Random
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Dimensional:
		return "MR-Dim"
	case Grid:
		return "MR-Grid"
	case Angular:
		return "MR-Angle"
	case Random:
		return "MR-Random"
	default:
		return "Unknown"
	}
}

// Schemes lists the paper's three schemes in presentation order.
func Schemes() []Scheme { return []Scheme{Dimensional, Grid, Angular} }

// MarshalText encodes the scheme by name, so JSON maps keyed by Scheme
// and serialized job specs stay human-readable.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a scheme name produced by MarshalText.
func (s *Scheme) UnmarshalText(b []byte) error {
	switch string(b) {
	case "MR-Dim":
		*s = Dimensional
	case "MR-Grid":
		*s = Grid
	case "MR-Angle":
		*s = Angular
	case "MR-Random":
		*s = Random
	default:
		return fmt.Errorf("partition: unknown scheme %q", b)
	}
	return nil
}

// Partitioner assigns points to partitions. Implementations are immutable
// after construction and safe for concurrent use.
type Partitioner interface {
	// Name identifies the partitioner for logs and experiment tables.
	Name() string
	// Partitions returns the total number of partitions; Assign results
	// are always in [0, Partitions()).
	Partitions() int
	// Assign returns the partition index for p. It returns an error only
	// for invalid points (wrong dimension, NaN/Inf).
	Assign(p points.Point) (int, error)
}

// Pruner is implemented by partitioners that can prove some partitions
// wholly dominated by others (MR-Grid's cell pruning). Pruned partitions
// need no local skyline computation.
type Pruner interface {
	// Prunable receives which partitions are occupied and returns, for
	// each partition index, whether it is provably dominated by some other
	// occupied partition.
	Prunable(occupied []bool) []bool
}

// New constructs a partitioner of the given scheme fitted to the dataset,
// targeting at least want partitions (the actual count may be slightly
// larger for grid-structured schemes, never smaller unless the scheme
// cannot express that many cells). The dataset must be non-empty and
// uniform-dimensional.
func New(scheme Scheme, data points.Set, want int) (Partitioner, error) {
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if want < 1 {
		return nil, fmt.Errorf("partition: want %d partitions, need >= 1", want)
	}
	min, max := data.Bounds()
	switch scheme {
	case Dimensional:
		return NewDimensional(0, min[0], max[0], want, data.Dim())
	case Grid:
		return NewGrid(min, max, want)
	case Angular:
		// Fit on a bounded deterministic sample: quantile cuts from a few
		// thousand points match the full-data cuts to well under a sector
		// width, and the full fit's angle transform over n points was the
		// single most expensive prologue in the pipeline. Small inputs
		// (≤ sample size) take the exact fit unchanged.
		return FitAngularSampled(data, want, angularFitSample, 1)
	case Random:
		return NewRandom(data.Dim(), want)
	default:
		return nil, fmt.Errorf("partition: unknown scheme %d", int(scheme))
	}
}

// angularFitSample is the sample size New uses to fit angular quantile
// cuts. Datasets at or below this size are fitted exactly.
const angularFitSample = 4096

// splitCounts factors a target partition count into per-axis split counts
// over m axes, as evenly as possible: starting from all ones, it repeatedly
// doubles the axis with the fewest splits until the product reaches the
// target. The product is the smallest power-of-two-ish value ≥ want
// reachable this way, which keeps cells close to cubical — the behaviour
// the paper's figures assume (e.g. 4 partitions in 2-D = 2×2).
func splitCounts(m, want int) []int {
	splits := make([]int, m)
	for i := range splits {
		splits[i] = 1
	}
	product := 1
	for product < want {
		// Double the axis with the smallest split count (ties: lowest
		// index), keeping the grid as balanced as possible.
		best := 0
		for i := 1; i < m; i++ {
			if splits[i] < splits[best] {
				best = i
			}
		}
		product = product / splits[best] * (splits[best] * 2)
		splits[best] *= 2
	}
	return splits
}

func product(splits []int) int {
	p := 1
	for _, s := range splits {
		p *= s
	}
	return p
}

// bucket maps v in [lo, hi] to a bin in [0, n). Values outside the fitted
// range are clamped into the boundary bins so that a partitioner fitted on
// one dataset still accepts unseen points (e.g. a newly published service).
func bucket(v, lo, hi float64, n int) int {
	if n == 1 || hi <= lo {
		return 0
	}
	b := int(float64(n) * (v - lo) / (hi - lo))
	if b < 0 {
		return 0
	}
	if b >= n {
		return n - 1
	}
	return b
}

// ---------------------------------------------------------------------------
// Dimensional (MR-Dim)

// DimensionalPartitioner splits one chosen dimension into equal-width
// ranges: partition i covers [i·Vmax/Np, (i+1)·Vmax/Np) of that dimension
// (paper §III-A).
type DimensionalPartitioner struct {
	dim    int     // the dimension partitioned on
	lo, hi float64 // fitted value range in that dimension
	n      int     // number of partitions
	d      int     // expected point dimensionality
}

// NewDimensional builds a dimensional partitioner over value range
// [lo, hi] of dimension dim, with n partitions, for d-dimensional points.
func NewDimensional(dim int, lo, hi float64, n, d int) (*DimensionalPartitioner, error) {
	if dim < 0 || dim >= d {
		return nil, fmt.Errorf("partition: dimension %d out of range for %d-dim points", dim, d)
	}
	if n < 1 {
		return nil, errors.New("partition: need >= 1 partition")
	}
	if hi < lo {
		return nil, fmt.Errorf("partition: invalid range [%g, %g]", lo, hi)
	}
	return &DimensionalPartitioner{dim: dim, lo: lo, hi: hi, n: n, d: d}, nil
}

// Name implements Partitioner.
func (p *DimensionalPartitioner) Name() string { return Dimensional.String() }

// Partitions implements Partitioner.
func (p *DimensionalPartitioner) Partitions() int { return p.n }

// Assign implements Partitioner.
func (p *DimensionalPartitioner) Assign(pt points.Point) (int, error) {
	if err := checkPoint(pt, p.d); err != nil {
		return 0, err
	}
	return bucket(pt[p.dim], p.lo, p.hi, p.n), nil
}

// ---------------------------------------------------------------------------
// Grid (MR-Grid)

// GridPartitioner divides every dimension into equal ranges, forming a
// Cartesian grid of cells (paper §III-B). It supports cell-level dominance
// pruning: a cell whose min corner is weakly dominated by the max corner of
// another occupied cell contains only globally dominated points.
type GridPartitioner struct {
	min, max points.Point
	splits   []int
	n        int
}

// NewGrid builds a grid partitioner over the bounding box [min, max] with
// at least want cells.
func NewGrid(min, max points.Point, want int) (*GridPartitioner, error) {
	if len(min) != len(max) || len(min) == 0 {
		return nil, errors.New("partition: grid bounds must be non-empty and same dimension")
	}
	for i := range min {
		if max[i] < min[i] {
			return nil, fmt.Errorf("partition: grid bound %d inverted: [%g, %g]", i, min[i], max[i])
		}
	}
	splits := splitCounts(len(min), want)
	return &GridPartitioner{
		min:    min.Clone(),
		max:    max.Clone(),
		splits: splits,
		n:      product(splits),
	}, nil
}

// Name implements Partitioner.
func (g *GridPartitioner) Name() string { return Grid.String() }

// Partitions implements Partitioner.
func (g *GridPartitioner) Partitions() int { return g.n }

// Splits returns the per-dimension split counts (for tests and logs).
func (g *GridPartitioner) Splits() []int {
	out := make([]int, len(g.splits))
	copy(out, g.splits)
	return out
}

// Assign implements Partitioner.
func (g *GridPartitioner) Assign(pt points.Point) (int, error) {
	if err := checkPoint(pt, len(g.min)); err != nil {
		return 0, err
	}
	id := 0
	for i := range pt {
		b := bucket(pt[i], g.min[i], g.max[i], g.splits[i])
		id = id*g.splits[i] + b
	}
	return id, nil
}

// cellCorners returns the min and max corners of cell id.
func (g *GridPartitioner) cellCorners(id int) (lo, hi points.Point) {
	d := len(g.min)
	idx := make([]int, d)
	for i := d - 1; i >= 0; i-- {
		idx[i] = id % g.splits[i]
		id /= g.splits[i]
	}
	lo = make(points.Point, d)
	hi = make(points.Point, d)
	for i := 0; i < d; i++ {
		w := (g.max[i] - g.min[i]) / float64(g.splits[i])
		lo[i] = g.min[i] + float64(idx[i])*w
		hi[i] = g.min[i] + float64(idx[i]+1)*w
	}
	return lo, hi
}

// Prunable implements Pruner. Cell B is prunable when some other occupied
// cell A has maxCorner(A) ≤ minCorner(B) component-wise: every point of A
// then weakly dominates every point of B, and since binning is a function
// of coordinates, points in different cells are never coordinate-equal, so
// the dominance is strict (paper's "bottom-left dominates up-right").
func (g *GridPartitioner) Prunable(occupied []bool) []bool {
	pruned := make([]bool, g.n)
	if len(occupied) != g.n {
		return pruned
	}
	type corners struct{ lo, hi points.Point }
	occ := make([]int, 0, g.n)
	cs := make([]corners, g.n)
	for id := 0; id < g.n; id++ {
		if occupied[id] {
			lo, hi := g.cellCorners(id)
			cs[id] = corners{lo, hi}
			occ = append(occ, id)
		}
	}
	for _, b := range occ {
		for _, a := range occ {
			if a == b {
				continue
			}
			if points.DominatesOrEqual(cs[a].hi, cs[b].lo) {
				pruned[b] = true
				break
			}
		}
	}
	return pruned
}

// ---------------------------------------------------------------------------
// Angular (MR-Angle)

// AngularPartitioner implements the paper's new scheme: points are mapped
// to hyperspherical coordinates (Eq. 1) and the (d−1)-dimensional angular
// subspace [0, π/2]^(d−1) is gridded. Because angles depend only on the
// direction from the origin, each sector contains a full quality gradient
// from near-origin (high quality) to far (low quality) services, which is
// what balances local skyline sizes across partitions.
//
// Sector boundaries come in two flavours: equal-width over [0, π/2]
// (NewAngular — the textbook reading of the paper) and recursive
// equi-depth cuts at data quantiles (FitAngular — used by New). Real QoS
// data concentrates in a narrow angular band in high dimensions, leaving
// most equal-width sectors empty; the fitted variant splits angle φ1 at
// data quantiles, then splits each resulting slab on φ2 at that slab's own
// conditional quantiles, and so on (a kd-tree over the angle vector), so
// every sector holds an equal share of the data. In 2-D this degenerates
// to plain quantile sectors on the single angle, matching the paper's
// figure. Either way a sector is a union of rays from the origin — the
// scheme's defining property.
//
// The transform requires non-negative coordinates; the partitioner is
// fitted with a translation offset that shifts the data's min corner to the
// origin. Translation preserves dominance, so the skyline is unaffected.
type AngularPartitioner struct {
	offset points.Point // subtracted from every point before the transform
	splits []int        // per-angle split counts, length d−1
	// cuts[i] holds, for every cell alive after splitting angles 0..i−1
	// (there are splits[0]·...·splits[i−1] of them, indexed by the partial
	// cell id), the splits[i]−1 increasing interior boundaries of angle i
	// within that cell. nil means equal-width buckets over [0, π/2].
	cuts [][][]float64
	n    int
	d    int
}

// NewAngular builds an angular partitioner for d-dimensional points with
// at least want sectors, translating by -min so data becomes non-negative.
// Points need dimension ≥ 2 (a 1-D space has no angles).
func NewAngular(min points.Point, d, want int) (*AngularPartitioner, error) {
	if d < 2 {
		return nil, fmt.Errorf("partition: angular scheme needs dimension >= 2, got %d", d)
	}
	if len(min) != d {
		return nil, fmt.Errorf("partition: offset has dimension %d, want %d", len(min), d)
	}
	splits := splitCounts(d-1, want)
	return &AngularPartitioner{
		offset: min.Clone(),
		splits: splits,
		n:      product(splits),
		d:      d,
	}, nil
}

// Name implements Partitioner.
func (a *AngularPartitioner) Name() string { return Angular.String() }

// Partitions implements Partitioner.
func (a *AngularPartitioner) Partitions() int { return a.n }

// Splits returns the per-angle split counts (for tests and logs).
func (a *AngularPartitioner) Splits() []int {
	out := make([]int, len(a.splits))
	copy(out, a.splits)
	return out
}

// assignStackDim bounds the dimension for which Assign works entirely on
// stack buffers; higher dimensions fall back to heap slices.
const assignStackDim = 16

// Assign implements Partitioner. This is the pipeline's per-point hot
// path (the mapper calls it for every input point), so it inlines the
// hyperspherical transform instead of calling hyper.ToHyperspherical:
// same Hypot/Atan2 arithmetic in the same order — bucket boundaries are
// bit-identical — but with stack buffers instead of three heap
// allocations, no redundant re-validation, and no Atan2 for angles the
// partitioner never splits on (splitCounts leaves most axes at one split
// once want ≪ 2^(d−1); an unsplit angle contributes id·1+0 regardless of
// its value).
func (a *AngularPartitioner) Assign(pt points.Point) (int, error) {
	if len(pt) != a.d {
		return 0, checkPoint(pt, a.d)
	}
	var sbuf [assignStackDim]float64
	var nbuf [assignStackDim + 1]float64
	shifted, suffix := sbuf[:a.d], nbuf[:a.d+1]
	if a.d > assignStackDim {
		shifted, suffix = make([]float64, a.d), make([]float64, a.d+1)
	}
	// Input validity is checked through the transform itself rather than a
	// per-coordinate Validate pass up front: NaN and +Inf coordinates
	// survive the shift and poison the sum of squares, and −Inf (which the
	// clamp would otherwise erase) is flagged where it appears. Only the
	// poisoned slow path pays for Validate's error message.
	bad := false
	for i := range pt {
		v := pt[i] - a.offset[i]
		if v < 0 {
			if math.IsInf(v, -1) {
				bad = true
			}
			v = 0 // clamp unseen below-range values; preserves sector order
		}
		shifted[i] = v
	}
	// suffix[i] = sqrt(shifted[i]² + ... + shifted[d−1]²), exactly as
	// hyper.ToHyperspherical computes it (running sum of squares + Sqrt) —
	// the fitted cuts and this lookup must agree bit-for-bit on the
	// boundary tie rule.
	suffix[a.d] = 0
	s := 0.0
	for i := a.d - 1; i >= 0; i-- {
		s += shifted[i] * shifted[i]
		suffix[i] = math.Sqrt(s)
	}
	if bad || !(suffix[0] <= math.MaxFloat64) { // NaN or +Inf radius
		if err := pt.Validate(); err != nil {
			return 0, err
		}
		// Finite input whose squares overflow: keep going — the +Inf
		// suffix yields π/2 angles, still clamped into boundary sectors.
	}
	id := 0
	for i := 0; i < a.d-1; i++ {
		k := a.splits[i]
		if k <= 1 {
			continue // id = id·1 + 0: the angle's value cannot matter
		}
		ang := math.Atan2(suffix[i+1], shifted[i])
		var b int
		if a.cuts != nil && a.cuts[i] != nil {
			cell := a.cuts[i][id]
			b = sort.SearchFloat64s(cell, ang)
			// SearchFloat64s returns the first cut >= ang; a point exactly
			// on a cut goes to the upper bucket for half-open intervals.
			for b < len(cell) && cell[b] == ang {
				b++
			}
		} else {
			b = bucket(ang, 0, hyper.MaxAngle, k)
		}
		id = id*k + b
	}
	return id, nil
}

// Cuts returns a deep copy of the recursive quantile boundaries (nil for
// an equal-width partitioner). Used to ship a fitted partitioner to
// remote workers.
func (a *AngularPartitioner) Cuts() [][][]float64 {
	if a.cuts == nil {
		return nil
	}
	out := make([][][]float64, len(a.cuts))
	for i, level := range a.cuts {
		if level == nil {
			continue
		}
		out[i] = make([][]float64, len(level))
		for j, c := range level {
			out[i][j] = append([]float64(nil), c...)
		}
	}
	return out
}

// FitAngular builds an angular partitioner with recursive equi-depth
// sector boundaries: angle φ1 is cut at the data's quantiles, then each
// resulting slab is cut on φ2 at the slab's own conditional quantiles, and
// so on, so every final sector carries (up to ties) the same number of
// points. Heavily-tied data may still leave some sectors light — correct,
// merely less balanced.
func FitAngular(data points.Set, want int) (*AngularPartitioner, error) {
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	d := data.Dim()
	if d < 2 {
		return nil, fmt.Errorf("partition: angular scheme needs dimension >= 2, got %d", d)
	}
	min, _ := data.Bounds()
	a, err := NewAngular(min, d, want)
	if err != nil {
		return nil, err
	}
	// Compute every point's angle vector once.
	angles := make([][]float64, len(data))
	shifted := make(points.Point, d)
	for k, pt := range data {
		for i := range pt {
			shifted[i] = pt[i] - min[i]
		}
		c, err := hyper.ToHyperspherical(shifted)
		if err != nil {
			return nil, err
		}
		angles[k] = c.Angles
	}
	// Recursively split: cells[j] holds the indices of points currently in
	// partial cell j; each level refines every cell on the next angle.
	cells := [][]int{make([]int, len(data))}
	for k := range data {
		cells[0][k] = k
	}
	cuts := make([][][]float64, d-1)
	for i := 0; i < d-1; i++ {
		k := a.splits[i]
		if k <= 1 {
			// No split on this angle: cells carry over unchanged.
			continue
		}
		level := make([][]float64, len(cells))
		next := make([][]int, 0, len(cells)*k)
		for j, members := range cells {
			vals := make([]float64, len(members))
			for m, idx := range members {
				vals[m] = angles[idx][i]
			}
			sort.Float64s(vals)
			c := make([]float64, k-1)
			for q := 1; q < k; q++ {
				if len(vals) == 0 {
					c[q-1] = 0
					continue
				}
				idx := q * len(vals) / k
				if idx >= len(vals) {
					idx = len(vals) - 1
				}
				c[q-1] = vals[idx]
			}
			level[j] = c
			// Distribute members into the k children, matching Assign's
			// upper-bucket rule for ties.
			children := make([][]int, k)
			for _, idx := range members {
				b := sort.SearchFloat64s(c, angles[idx][i])
				for b < len(c) && c[b] == angles[idx][i] {
					b++
				}
				children[b] = append(children[b], idx)
			}
			next = append(next, children...)
		}
		cuts[i] = level
		cells = next
	}
	a.cuts = cuts
	return a, nil
}

// FitAngularSampled fits the equi-depth angular partitioner on a uniform
// random sample of the data — the practical choice for very large
// datasets, where exact quantiles cost a full sort per tree level. The
// sample is drawn deterministically from seed. sampleSize is clamped to
// the dataset size; values below 2×want quantiles are raised to 64×want
// for stable cuts.
func FitAngularSampled(data points.Set, want, sampleSize int, seed int64) (*AngularPartitioner, error) {
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	minSample := 64 * want
	if sampleSize < minSample {
		sampleSize = minSample
	}
	if sampleSize >= len(data) {
		return FitAngular(data, want)
	}
	rng := rand.New(rand.NewSource(seed))
	sample := make(points.Set, sampleSize)
	for i, idx := range rng.Perm(len(data))[:sampleSize] {
		sample[i] = data[idx]
	}
	// The translation offset must come from the full data so no point
	// lands below the fitted origin; appending the full min corner as one
	// synthetic sample point achieves that (and perturbs the quantiles by
	// at most one rank).
	fullMin, _ := data.Bounds()
	return FitAngular(append(sample, fullMin.Clone()), want)
}

// NewAngularWithCuts reconstructs a fitted angular partitioner from its
// offset, split counts and recursive quantile cuts (as shipped in a
// distributed job spec). cuts may be nil for equal-width behaviour; when
// non-nil, cuts[i] must either be nil (splits[i] == 1) or hold one sorted
// list of splits[i]−1 boundaries per partial cell of level i.
func NewAngularWithCuts(offset points.Point, splits []int, cuts [][][]float64) (*AngularPartitioner, error) {
	d := len(offset)
	if d < 2 {
		return nil, fmt.Errorf("partition: angular scheme needs dimension >= 2, got %d", d)
	}
	if len(splits) != d-1 {
		return nil, fmt.Errorf("partition: %d splits for %d-dim points, want %d", len(splits), d, d-1)
	}
	n := 1
	for i, s := range splits {
		if s < 1 {
			return nil, fmt.Errorf("partition: split %d is %d, want >= 1", i, s)
		}
		n *= s
	}
	if cuts != nil {
		if len(cuts) != d-1 {
			return nil, fmt.Errorf("partition: %d cut levels, want %d", len(cuts), d-1)
		}
		cellsAtLevel := 1
		for i, level := range cuts {
			if level == nil {
				if splits[i] > 1 {
					return nil, fmt.Errorf("partition: missing cuts for angle %d with %d splits", i, splits[i])
				}
				continue
			}
			if len(level) != cellsAtLevel {
				return nil, fmt.Errorf("partition: level %d has %d cells, want %d", i, len(level), cellsAtLevel)
			}
			for j, c := range level {
				if len(c) != splits[i]-1 {
					return nil, fmt.Errorf("partition: level %d cell %d has %d cuts, want %d", i, j, len(c), splits[i]-1)
				}
				for q := 1; q < len(c); q++ {
					if c[q] < c[q-1] {
						return nil, fmt.Errorf("partition: level %d cell %d cuts not sorted", i, j)
					}
				}
			}
			cellsAtLevel *= splits[i]
		}
	}
	return &AngularPartitioner{
		offset: offset.Clone(),
		splits: append([]int(nil), splits...),
		cuts:   cuts,
		n:      n,
		d:      d,
	}, nil
}

// ---------------------------------------------------------------------------
// Random baseline

// RandomPartitioner assigns points to partitions by an FNV hash of their
// coordinates: deterministic, uniform in expectation, but with no spatial
// structure — the control case for partitioning ablations.
type RandomPartitioner struct {
	n int
	d int
}

// NewRandom builds a hash partitioner with exactly n partitions.
func NewRandom(d, n int) (*RandomPartitioner, error) {
	if n < 1 {
		return nil, errors.New("partition: need >= 1 partition")
	}
	if d < 1 {
		return nil, errors.New("partition: need dimension >= 1")
	}
	return &RandomPartitioner{n: n, d: d}, nil
}

// Name implements Partitioner.
func (r *RandomPartitioner) Name() string { return Random.String() }

// Partitions implements Partitioner.
func (r *RandomPartitioner) Partitions() int { return r.n }

// Assign implements Partitioner.
func (r *RandomPartitioner) Assign(pt points.Point) (int, error) {
	if err := checkPoint(pt, r.d); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range pt {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return int(h.Sum64() % uint64(r.n)), nil
}

func checkPoint(pt points.Point, d int) error {
	if err := pt.Validate(); err != nil {
		return err
	}
	if len(pt) != d {
		return fmt.Errorf("partition: point has dimension %d, want %d", len(pt), d)
	}
	return nil
}

// Histogram assigns every point of the set and returns per-partition
// counts. It is the load-balance diagnostic used in tests and experiments.
func Histogram(p Partitioner, s points.Set) ([]int, error) {
	counts := make([]int, p.Partitions())
	for _, pt := range s {
		id, err := p.Assign(pt)
		if err != nil {
			return nil, err
		}
		counts[id]++
	}
	return counts, nil
}

// ImbalanceRatio summarizes a histogram as max/mean over non-empty-capable
// slots; 1.0 is perfectly balanced. An all-zero histogram returns 0.
func ImbalanceRatio(counts []int) float64 {
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 || len(counts) == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return float64(max) / mean
}
