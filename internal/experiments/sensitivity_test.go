package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestSensitivity(t *testing.T) {
	sc := tinyScale()
	rows, err := Sensitivity(context.Background(), sc, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(Methods) {
		t.Fatalf("%d rows, want %d", len(rows), 4*len(Methods))
	}
	// Skyline sizes per distribution must agree across methods, and the
	// anticorrelated skyline must dwarf the correlated one.
	sizes := map[dataset.Kind]int{}
	for _, r := range rows {
		if prev, ok := sizes[r.Distribution]; ok && prev != r.SkylineSize {
			t.Errorf("%v: methods disagree on skyline size (%d vs %d)", r.Distribution, prev, r.SkylineSize)
		}
		sizes[r.Distribution] = r.SkylineSize
		if r.Optimality < 0 || r.Optimality > 1 {
			t.Errorf("%v/%v: optimality %g", r.Distribution, r.Method, r.Optimality)
		}
	}
	if sizes[dataset.KindAnticorrelated] <= sizes[dataset.KindCorrelated] {
		t.Errorf("anticorrelated skyline (%d) not larger than correlated (%d)",
			sizes[dataset.KindAnticorrelated], sizes[dataset.KindCorrelated])
	}

	var buf bytes.Buffer
	WriteSensitivity(&buf, rows, "sens")
	if !strings.Contains(buf.String(), "anticorrelated") {
		t.Error("table rendering broken")
	}
}

func TestSaveJSON(t *testing.T) {
	sc := tinyScale()
	rows, err := Figure7(context.Background(), sc, 300)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := SaveJSON(dir, "figure7a", rows)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []Figure7Row
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, blob)
	}
	if len(back) != len(rows) {
		t.Fatalf("round trip %d rows, want %d", len(back), len(rows))
	}
	// Scheme map keys must render by name.
	if !strings.Contains(string(blob), "MR-Angle") {
		t.Errorf("JSON lacks scheme names:\n%s", blob)
	}
	for i := range rows {
		for _, m := range Methods {
			if back[i].Optimality[m] != rows[i].Optimality[m] {
				t.Fatalf("row %d method %v mismatch", i, m)
			}
		}
	}
}
