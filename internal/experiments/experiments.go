// Package experiments reproduces the paper's evaluation: one runner per
// figure, each returning the table of numbers behind the plot, plus the
// Section IV theorem check and ablation studies. The cmd/skybench binary
// and the repository's benchmarks are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
)

// Scale bundles the experiment sizes. FullScale matches the paper;
// QuickScale is a minutes-not-hours variant for CI and tests that keeps
// the qualitative shape.
type Scale struct {
	// SmallN and LargeN are the two dataset cardinalities of Figures 5
	// and 7 (paper: 1,000 and 100,000).
	SmallN, LargeN int
	// Dims is the dimension sweep (paper: 2, 4, 6, 8, 10).
	Dims []int
	// Nodes is the modelled cluster size for Figures 5 and 7; the
	// partition count is 2 × Nodes per the paper.
	Nodes int
	// Workers is the number of engine worker goroutines used when
	// measuring processing time.
	Workers int
	// Servers is the server sweep of Figure 6 (paper: 4..32 step 4).
	Servers []int
	// Seed makes every dataset draw reproducible.
	Seed int64
	// Repeats is how many times timing runs are repeated (minimum taken)
	// to suppress scheduling noise.
	Repeats int
}

// FullScale reproduces the paper's configuration.
func FullScale() Scale {
	return Scale{
		SmallN:  1000,
		LargeN:  100000,
		Dims:    []int{2, 4, 6, 8, 10},
		Nodes:   4,
		Workers: 4,
		Servers: []int{4, 8, 12, 16, 20, 24, 28, 32},
		Seed:    2012,
		Repeats: 3,
	}
}

// QuickScale keeps the shape at a fraction of the cost.
func QuickScale() Scale {
	return Scale{
		SmallN:  500,
		LargeN:  8000,
		Dims:    []int{2, 4, 6, 8, 10},
		Nodes:   4,
		Workers: 4,
		Servers: []int{4, 8, 16, 32},
		Seed:    2012,
		Repeats: 1,
	}
}

// Methods are the paper's three algorithms in presentation order.
var Methods = partition.Schemes()

// ---------------------------------------------------------------------------
// Figure 5: processing time vs dimension, per method

// Figure5Row is one dimension's timings.
type Figure5Row struct {
	Dim   int
	Times map[partition.Scheme]time.Duration
}

// Figure5 measures the MapReduce skyline processing time for each method
// over the dimension sweep at cardinality n (5(a): SmallN, 5(b): LargeN).
func Figure5(ctx context.Context, sc Scale, n int) ([]Figure5Row, error) {
	repeats := sc.Repeats
	if repeats < 1 {
		repeats = 1
	}
	rows := make([]Figure5Row, 0, len(sc.Dims))
	for _, d := range sc.Dims {
		data := qws.Dataset(sc.Seed, n, d)
		row := Figure5Row{Dim: d, Times: make(map[partition.Scheme]time.Duration)}
		for _, scheme := range Methods {
			best := time.Duration(0)
			for r := 0; r < repeats; r++ {
				_, stats, err := driver.Compute(ctx, data, driver.Options{
					Scheme:  scheme,
					Nodes:   sc.Nodes,
					Workers: sc.Workers,
				})
				if err != nil {
					return nil, fmt.Errorf("figure5 n=%d d=%d %v: %w", n, d, scheme, err)
				}
				if r == 0 || stats.Timing.Total < best {
					best = stats.Timing.Total
				}
			}
			row.Times[scheme] = best
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFigure5 renders the rows as a text table.
func WriteFigure5(w io.Writer, rows []Figure5Row, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s", "dim")
	for _, m := range Methods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintf(w, "%16s%16s\n", "grid/angle", "dim/angle")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d", r.Dim)
		for _, m := range Methods {
			fmt.Fprintf(w, "%14s", r.Times[m].Round(time.Microsecond))
		}
		angle := r.Times[partition.Angular]
		fmt.Fprintf(w, "%15.2fx%15.2fx\n",
			ratio(r.Times[partition.Grid], angle), ratio(r.Times[partition.Dimensional], angle))
	}
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ---------------------------------------------------------------------------
// Figure 6: Map/Reduce breakdown vs servers (simulated cluster)

// Figure6Row is one server count's simulated breakdown.
type Figure6Row struct {
	Servers    int
	MapTime    time.Duration
	ReduceTime time.Duration
}

// Total returns the stacked bar height.
func (r Figure6Row) Total() time.Duration { return r.MapTime + r.ReduceTime }

// Figure6 reproduces the scalability experiment: the MR-Angle pipeline on
// the large dataset at 10 attributes, with partition count coupled to
// cluster size (2 × servers). The algorithmic workload (partition sizes,
// local skyline sizes, global size) is measured by really running the
// driver; the wall-clock split is produced by the cluster simulator.
func Figure6(ctx context.Context, sc Scale) ([]Figure6Row, error) {
	d := sc.Dims[len(sc.Dims)-1]
	data := qws.Dataset(sc.Seed, sc.LargeN, d)
	cm := cluster.DefaultCostModel()
	breakdowns, err := cluster.Sweep(sc.Servers, cm, func(servers int) (cluster.Workload, error) {
		return WorkloadFor(ctx, data, partition.Angular, servers, sc.Workers)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure6Row, len(breakdowns))
	for i, b := range breakdowns {
		rows[i] = Figure6Row{Servers: b.Servers, MapTime: b.MapTime, ReduceTime: b.ReduceTime}
	}
	return rows, nil
}

// WorkloadFor runs the real pipeline once and extracts the cluster
// simulator's workload for the given server count (partitions = 2 ×
// servers, the paper's rule).
func WorkloadFor(ctx context.Context, data points.Set, scheme partition.Scheme, servers, workers int) (cluster.Workload, error) {
	global, stats, err := driver.Compute(ctx, data, driver.Options{
		Scheme:  scheme,
		Nodes:   servers,
		Workers: workers,
	})
	if err != nil {
		return cluster.Workload{}, err
	}
	sizes := make([]int, stats.Partitions)
	skies := make([]int, stats.Partitions)
	copy(sizes, stats.PartitionCounts)
	for id, ls := range stats.LocalSkylines {
		skies[id] = len(ls)
	}
	return cluster.Workload{
		Records:           len(data),
		Dim:               data.Dim(),
		PartitionSizes:    sizes,
		LocalSkylineSizes: skies,
		GlobalSkylineSize: len(global),
	}, nil
}

// WriteFigure6 renders the rows.
func WriteFigure6(w io.Writer, rows []Figure6Row, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-9s%14s%14s%14s\n", "servers", "map", "reduce", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9d%14s%14s%14s\n",
			r.Servers, r.MapTime.Round(time.Millisecond),
			r.ReduceTime.Round(time.Millisecond), r.Total().Round(time.Millisecond))
	}
}

// ---------------------------------------------------------------------------
// Figure 7: local skyline optimality vs dimension, per method

// Figure7Row is one dimension's optimality values.
type Figure7Row struct {
	Dim        int
	Optimality map[partition.Scheme]float64
}

// Figure7 computes the Eq. (5) local skyline optimality for each method
// over the dimension sweep at cardinality n.
func Figure7(ctx context.Context, sc Scale, n int) ([]Figure7Row, error) {
	rows := make([]Figure7Row, 0, len(sc.Dims))
	for _, d := range sc.Dims {
		data := qws.Dataset(sc.Seed, n, d)
		row := Figure7Row{Dim: d, Optimality: make(map[partition.Scheme]float64)}
		for _, scheme := range Methods {
			global, stats, err := driver.Compute(ctx, data, driver.Options{
				Scheme:  scheme,
				Nodes:   sc.Nodes,
				Workers: sc.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("figure7 n=%d d=%d %v: %w", n, d, scheme, err)
			}
			row.Optimality[scheme] = metrics.LocalSkylineOptimality(stats.LocalSkylines, global)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFigure7 renders the rows.
func WriteFigure7(w io.Writer, rows []Figure7Row, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s", "dim")
	for _, m := range Methods {
		fmt.Fprintf(w, "%12s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d", r.Dim)
		for _, m := range Methods {
			fmt.Fprintf(w, "%12.3f", r.Optimality[m])
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Theorems 1 & 2: dominance ability

// TheoremRow is one x-position of the Section IV analysis (L = 1).
type TheoremRow struct {
	X, Y            float64
	DAngle, DGrid   float64
	Gap, Bound      float64
	MCAngle, MCGrid float64
}

// TheoremTable sweeps service positions along y = x/4 (inside the bottom
// sector) and reports analytic and Monte-Carlo dominance abilities. The
// sweep stops below x = L because the grid closed form (L−x)(L−y)/L²
// presumes the service sits in the bottom-left cell, exactly the paper's
// "it belongs to the partition close to the axes as the most case".
func TheoremTable(samples int, seed int64) []TheoremRow {
	const l = 1.0
	xs := []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95}
	rows := make([]TheoremRow, 0, len(xs))
	for _, x := range xs {
		y := x / 4
		row := TheoremRow{
			X:       x,
			Y:       y,
			DAngle:  metrics.DominanceAbilityAngle(x, y, l),
			DGrid:   metrics.DominanceAbilityGrid(x, y, l),
			Bound:   metrics.DominanceGapLowerBound(x, l),
			MCAngle: metrics.MonteCarloDominance(x, y, l, true, samples, seed),
			MCGrid:  metrics.MonteCarloDominance(x, y, l, false, samples, seed+1),
		}
		row.Gap = row.DAngle - row.DGrid
		rows = append(rows, row)
	}
	return rows
}

// WriteTheoremTable renders the rows.
func WriteTheoremTable(w io.Writer, rows []TheoremRow, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-7s%-7s%10s%10s%10s%10s%12s%12s\n",
		"x", "y", "D_angle", "D_grid", "gap", "bound", "MC_angle", "MC_grid")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7.2f%-7.2f%10.4f%10.4f%10.4f%10.4f%12.4f%12.4f\n",
			r.X, r.Y, r.DAngle, r.DGrid, r.Gap, r.Bound, r.MCAngle, r.MCGrid)
	}
}
