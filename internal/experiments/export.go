package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SaveJSON writes one experiment's rows as pretty-printed JSON under dir,
// named <name>.json — the machine-readable companion to the text tables,
// for plotting outside this repository. The directory is created if
// missing.
func SaveJSON(dir, name string, rows interface{}) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, name+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("experiments: creating %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		f.Close()
		return "", fmt.Errorf("experiments: encoding %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}
