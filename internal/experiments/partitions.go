package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/qws"
)

// PartitionCountRow is one cell of the partition-count study: the paper
// fixes partitions = 2 × nodes "empirically"; this experiment sweeps the
// multiplier to show the trade-off it balances (parallel slack versus
// shuffle/merge overhead and per-partition skyline dilution).
type PartitionCountRow struct {
	Multiplier int // partitions = Multiplier × nodes
	Partitions int
	Method     partition.Scheme
	Time       time.Duration
	LocalTotal int
	Optimality float64
}

// PartitionCount sweeps the partitions-per-node multiplier for every
// method on one QWS-like dataset.
func PartitionCount(ctx context.Context, sc Scale, n, d int) ([]PartitionCountRow, error) {
	data := qws.Dataset(sc.Seed, n, d)
	var rows []PartitionCountRow
	for _, mult := range []int{1, 2, 4, 8} {
		for _, scheme := range Methods {
			global, stats, err := driver.Compute(ctx, data, driver.Options{
				Scheme:     scheme,
				Nodes:      sc.Nodes,
				Partitions: mult * sc.Nodes,
				Workers:    sc.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("partition count x%d %v: %w", mult, scheme, err)
			}
			rows = append(rows, PartitionCountRow{
				Multiplier: mult,
				Partitions: stats.Partitions,
				Method:     scheme,
				Time:       stats.Timing.Total,
				LocalTotal: stats.LocalSkylineTotal(),
				Optimality: metrics.LocalSkylineOptimality(stats.LocalSkylines, global),
			})
		}
	}
	return rows, nil
}

// WritePartitionCount renders the rows.
func WritePartitionCount(w io.Writer, rows []PartitionCountRow, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-13s%-12s%-10s%12s%10s%12s\n",
		"multiplier", "partitions", "method", "time", "localsky", "optimality")
	for _, r := range rows {
		fmt.Fprintf(w, "x%-12d%-12d%-10s%12s%10d%12.3f\n",
			r.Multiplier, r.Partitions, r.Method,
			r.Time.Round(time.Microsecond), r.LocalTotal, r.Optimality)
	}
}
