package experiments

import (
	"context"
	"math"
	"testing"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/qws"
)

// Golden regression values for the full pipeline on a fixed seed. These
// quantities are deterministic end to end (generator, partitioners,
// engine output order, metrics); any change here means an algorithmic
// change somewhere in the stack and should be reviewed, not silently
// re-baselined.
func TestGoldenPipelineValues(t *testing.T) {
	data := qws.Dataset(2012, 3000, 5)
	want := map[partition.Scheme]struct {
		global, localSky int
		optimality       float64
	}{
		partition.Dimensional: {global: 87, localSky: 277, optimality: 0.145833},
		partition.Grid:        {global: 87, localSky: 307, optimality: 0.125000},
		partition.Angular:     {global: 87, localSky: 129, optimality: 0.699520},
	}
	for scheme, w := range want {
		global, stats, err := driver.Compute(context.Background(), data, driver.Options{Scheme: scheme, Nodes: 4})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(global) != w.global {
			t.Errorf("%v: global skyline %d, golden %d", scheme, len(global), w.global)
		}
		if got := stats.LocalSkylineTotal(); got != w.localSky {
			t.Errorf("%v: local skyline total %d, golden %d", scheme, got, w.localSky)
		}
		if got := metrics.LocalSkylineOptimality(stats.LocalSkylines, global); math.Abs(got-w.optimality) > 1e-6 {
			t.Errorf("%v: optimality %.6f, golden %.6f", scheme, got, w.optimality)
		}
	}
}
