package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/rtree"
	"repro/internal/skyline"
)

// bbsKernel adapts the R-tree BBS algorithm to the sequential-kernel
// signature: build an STR-packed tree per invocation, then run the
// branch-and-bound traversal.
func bbsKernel(s points.Set) points.Set {
	if len(s) == 0 {
		return nil
	}
	tr, err := rtree.New(s, rtree.DefaultFanout)
	if err != nil {
		// Kernel signatures are infallible; an unbuildable tree means
		// invalid points, which the driver validated already.
		panic("experiments: bbs kernel: " + err.Error())
	}
	return tr.Skyline(nil)
}

// AblationRow is one configuration of the design-choice studies that
// DESIGN.md calls out beyond the paper's own figures.
type AblationRow struct {
	Name           string
	Time           time.Duration
	ShuffleRecords int64
	LocalSkyTotal  int
	PrunedCells    int
	GlobalSkyline  int
	Optimality     float64
}

// Ablations measures, on one QWS-like dataset, the impact of: the
// local-skyline combiner (the paper's "middle process"), grid cell
// pruning, the sequential kernel choice, and the random-partitioning
// baseline.
func Ablations(ctx context.Context, sc Scale, n, d int) ([]AblationRow, error) {
	data := qws.Dataset(sc.Seed, n, d)
	type cfg struct {
		name string
		opts driver.Options
	}
	// The angular+radial hybrid: same sectors further cut into 4 radial
	// shells — measures the cost of partitions that do NOT span the
	// quality gradient (the paper's core argument for pure angles).
	hybrid, err := partition.FitAngularRadial(data, 2*sc.Nodes, 4)
	if err != nil {
		return nil, fmt.Errorf("ablation: fitting hybrid: %w", err)
	}
	cfgs := []cfg{
		{"MR-Angle (BNL, combiner)", driver.Options{Scheme: partition.Angular}},
		{"MR-Angle+RadialShells", driver.Options{Scheme: partition.Angular, PartitionerOverride: hybrid}},
		{"MR-Angle no combiner", driver.Options{Scheme: partition.Angular, DisableCombiner: true}},
		{"MR-Angle SFS kernel", driver.Options{Scheme: partition.Angular, Kernel: skyline.SFSAlgorithm}},
		{"MR-Angle D&C kernel", driver.Options{Scheme: partition.Angular, Kernel: skyline.DCAlgorithm}},
		{"MR-Angle BBS kernel", driver.Options{Scheme: partition.Angular, KernelOverride: bbsKernel}},
		{"MR-Grid (pruning on)", driver.Options{Scheme: partition.Grid}},
		{"MR-Grid pruning off", driver.Options{Scheme: partition.Grid, DisableGridPruning: true}},
		{"MR-Random baseline", driver.Options{Scheme: partition.Random}},
		{"MR-Dim", driver.Options{Scheme: partition.Dimensional}},
	}
	rows := make([]AblationRow, 0, len(cfgs))
	for _, c := range cfgs {
		c.opts.Nodes = sc.Nodes
		c.opts.Workers = sc.Workers
		global, stats, err := driver.Compute(ctx, data, c.opts)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", c.name, err)
		}
		rows = append(rows, AblationRow{
			Name:           c.name,
			Time:           stats.Timing.Total,
			ShuffleRecords: stats.Counters["mr.shuffle.records"],
			LocalSkyTotal:  stats.LocalSkylineTotal(),
			PrunedCells:    stats.PrunedPartitions,
			GlobalSkyline:  len(global),
			Optimality:     metrics.LocalSkylineOptimality(stats.LocalSkylines, global),
		})
	}
	return rows, nil
}

// WriteAblations renders the rows.
func WriteAblations(w io.Writer, rows []AblationRow, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-26s%12s%10s%10s%8s%8s%8s\n",
		"configuration", "time", "shuffle", "localsky", "pruned", "global", "opt")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s%12s%10d%10d%8d%8d%8.3f\n",
			r.Name, r.Time.Round(time.Microsecond), r.ShuffleRecords,
			r.LocalSkyTotal, r.PrunedCells, r.GlobalSkyline, r.Optimality)
	}
}
