package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/partition"
)

// tinyScale keeps experiment tests fast.
func tinyScale() Scale {
	return Scale{
		SmallN:  300,
		LargeN:  2000,
		Dims:    []int{2, 4},
		Nodes:   4,
		Workers: 4,
		Servers: []int{4, 16},
		Seed:    7,
		Repeats: 1,
	}
}

func TestFigure5(t *testing.T) {
	sc := tinyScale()
	rows, err := Figure5(context.Background(), sc, sc.SmallN)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sc.Dims) {
		t.Fatalf("%d rows, want %d", len(rows), len(sc.Dims))
	}
	for _, r := range rows {
		for _, m := range Methods {
			if r.Times[m] <= 0 {
				t.Errorf("dim %d %v: no time recorded", r.Dim, m)
			}
		}
	}
	var buf bytes.Buffer
	WriteFigure5(&buf, rows, "Figure 5 test")
	out := buf.String()
	if !strings.Contains(out, "MR-Angle") || !strings.Contains(out, "grid/angle") {
		t.Errorf("table rendering missing columns:\n%s", out)
	}
}

func TestFigure6(t *testing.T) {
	sc := tinyScale()
	rows, err := Figure6(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sc.Servers) {
		t.Fatalf("%d rows, want %d", len(rows), len(sc.Servers))
	}
	// More servers must not be substantially slower overall. At this tiny
	// scale fixed overhead dominates and over-partitioning can add a few
	// percent, so allow 10% wobble; the paper-scale decline is asserted in
	// the full benchmark run.
	if float64(rows[len(rows)-1].Total()) > float64(rows[0].Total())*1.10 {
		t.Errorf("total time grew >10%% with servers: %v -> %v", rows[0].Total(), rows[len(rows)-1].Total())
	}
	for _, r := range rows {
		if r.MapTime <= 0 || r.ReduceTime <= 0 {
			t.Errorf("servers %d: empty breakdown %+v", r.Servers, r)
		}
	}
	var buf bytes.Buffer
	WriteFigure6(&buf, rows, "Figure 6 test")
	if !strings.Contains(buf.String(), "servers") {
		t.Error("table rendering broken")
	}
}

func TestFigure7(t *testing.T) {
	sc := tinyScale()
	rows, err := Figure7(context.Background(), sc, sc.SmallN)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, m := range Methods {
			o := r.Optimality[m]
			if o < 0 || o > 1 {
				t.Errorf("dim %d %v: optimality %g out of [0,1]", r.Dim, m, o)
			}
		}
	}
	var buf bytes.Buffer
	WriteFigure7(&buf, rows, "Figure 7 test")
	if !strings.Contains(buf.String(), "dim") {
		t.Error("table rendering broken")
	}
}

func TestFigure7AngleWins(t *testing.T) {
	// The paper's qualitative claim: MR-Angle's local skyline optimality
	// beats MR-Dim and MR-Grid. Checked at moderate scale on the 2-D and
	// 4-D sweeps (averaged across dims to damp noise).
	sc := tinyScale()
	sc.SmallN = 1500
	rows, err := Figure7(context.Background(), sc, sc.SmallN)
	if err != nil {
		t.Fatal(err)
	}
	avg := map[partition.Scheme]float64{}
	for _, r := range rows {
		for _, m := range Methods {
			avg[m] += r.Optimality[m]
		}
	}
	if avg[partition.Angular] <= avg[partition.Grid] || avg[partition.Angular] <= avg[partition.Dimensional] {
		t.Errorf("MR-Angle optimality %g not above grid %g / dim %g",
			avg[partition.Angular], avg[partition.Grid], avg[partition.Dimensional])
	}
}

func TestTheoremTable(t *testing.T) {
	rows := TheoremTable(50000, 1)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Gap < r.Bound-1e-9 {
			t.Errorf("x=%g: gap %g below bound %g", r.X, r.Gap, r.Bound)
		}
		if diff := r.DAngle - r.MCAngle; diff > 0.02 || diff < -0.02 {
			t.Errorf("x=%g: analytic angle %g vs MC %g", r.X, r.DAngle, r.MCAngle)
		}
		if diff := r.DGrid - r.MCGrid; diff > 0.02 || diff < -0.02 {
			t.Errorf("x=%g: analytic grid %g vs MC %g", r.X, r.DGrid, r.MCGrid)
		}
	}
	var buf bytes.Buffer
	WriteTheoremTable(&buf, rows, "Theorems")
	if !strings.Contains(buf.String(), "D_angle") {
		t.Error("table rendering broken")
	}
}

func TestAblations(t *testing.T) {
	sc := tinyScale()
	rows, err := Ablations(context.Background(), sc, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("only %d ablation rows", len(rows))
	}
	// All configurations must agree on the global skyline size.
	for _, r := range rows[1:] {
		if r.GlobalSkyline != rows[0].GlobalSkyline {
			t.Errorf("%s: global skyline %d != %d", r.Name, r.GlobalSkyline, rows[0].GlobalSkyline)
		}
	}
	// The no-combiner run must shuffle more records than the default.
	var withC, withoutC int64
	for _, r := range rows {
		switch r.Name {
		case "MR-Angle (BNL, combiner)":
			withC = r.ShuffleRecords
		case "MR-Angle no combiner":
			withoutC = r.ShuffleRecords
		}
	}
	if withC >= withoutC {
		t.Errorf("combiner shuffle %d not below no-combiner %d", withC, withoutC)
	}
	var buf bytes.Buffer
	WriteAblations(&buf, rows, "Ablations")
	if !strings.Contains(buf.String(), "configuration") {
		t.Error("table rendering broken")
	}
}

func TestScalesSane(t *testing.T) {
	for _, sc := range []Scale{FullScale(), QuickScale()} {
		if sc.SmallN <= 0 || sc.LargeN <= sc.SmallN {
			t.Errorf("bad cardinalities: %+v", sc)
		}
		if len(sc.Dims) == 0 || len(sc.Servers) == 0 {
			t.Errorf("empty sweeps: %+v", sc)
		}
		if sc.Dims[len(sc.Dims)-1] != 10 {
			t.Errorf("dimension sweep must end at the paper's 10: %v", sc.Dims)
		}
	}
}
