package experiments

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/qws"
	"repro/internal/telemetry"
)

// TestFlightRecorderMatchesFigure7: the flight recorder's live
// per-partition optimality must equal the offline Eq. (5) computation
// the Figure 7 experiment performs — same seeded QWS sample, same
// driver run, compared within 1e-9 — for every partitioning method.
// This pins the recorder as a faithful runtime view of the paper's
// metric, not a parallel approximation that can drift.
func TestFlightRecorderMatchesFigure7(t *testing.T) {
	data := qws.Dataset(2012, 3000, 5)
	for _, scheme := range Methods {
		rec := telemetry.NewRecorder(fmt.Sprintf("skyline:%s", scheme))
		ctx := telemetry.WithRecorder(context.Background(), rec)
		global, stats, err := driver.Compute(ctx, data, driver.Options{Scheme: scheme, Nodes: 4})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}

		// Offline, exactly as Figure7 computes it.
		offline := metrics.LocalSkylineOptimality(stats.LocalSkylines, global)
		perPart := metrics.PerPartitionOptimality(stats.LocalSkylines, global)

		rep := rec.Report()
		if math.Abs(rep.Optimality-offline) > 1e-9 {
			t.Errorf("%v: recorder optimality %.12f, offline Eq. (5) %.12f",
				scheme, rep.Optimality, offline)
		}
		if rep.GlobalSkyline != len(global) {
			t.Errorf("%v: recorder global skyline %d, driver %d",
				scheme, rep.GlobalSkyline, len(global))
		}
		for _, p := range rep.Partitions {
			want, tracked := perPart[p.Partition]
			if !tracked {
				// Partitions with an empty local skyline are absent from the
				// offline map and must read 0 in the recorder too.
				if p.Optimality != 0 || p.LocalSkyline != 0 {
					t.Errorf("%v p%d: recorder has opt %.12f sky %d, offline has no entry",
						scheme, p.Partition, p.Optimality, p.LocalSkyline)
				}
				continue
			}
			if math.Abs(p.Optimality-want) > 1e-9 {
				t.Errorf("%v p%d: recorder optimality %.12f, offline %.12f",
					scheme, p.Partition, p.Optimality, want)
			}
			if got := len(stats.LocalSkylines[p.Partition]); got != p.LocalSkyline {
				t.Errorf("%v p%d: recorder local skyline %d, driver %d",
					scheme, p.Partition, p.LocalSkyline, got)
			}
		}
		// Per-partition input counts mirror the driver's occupancy.
		for id, n := range stats.PartitionCounts {
			if id >= len(rep.Partitions) {
				break
			}
			if rep.Partitions[id].InputRecords != int64(n) {
				t.Errorf("%v p%d: recorder input %d, driver occupancy %d",
					scheme, id, rep.Partitions[id].InputRecords, n)
			}
		}
	}
}
