package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/partition"
)

func TestPartitionCount(t *testing.T) {
	sc := tinyScale()
	rows, err := PartitionCount(context.Background(), sc, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(Methods) {
		t.Fatalf("%d rows, want %d", len(rows), 4*len(Methods))
	}
	// Local skyline volume must grow with partition count for every
	// method (more partitions → more locally-undominated survivors).
	byMethod := map[partition.Scheme][]PartitionCountRow{}
	for _, r := range rows {
		byMethod[r.Method] = append(byMethod[r.Method], r)
	}
	for m, rs := range byMethod {
		if rs[0].LocalTotal > rs[len(rs)-1].LocalTotal {
			t.Errorf("%v: local skyline volume shrank with partitions: %d -> %d",
				m, rs[0].LocalTotal, rs[len(rs)-1].LocalTotal)
		}
		for _, r := range rs {
			if r.Partitions < r.Multiplier*sc.Nodes && m != partition.Dimensional {
				t.Errorf("%v x%d: only %d partitions", m, r.Multiplier, r.Partitions)
			}
		}
	}
	var buf bytes.Buffer
	WritePartitionCount(&buf, rows, "pc")
	if !strings.Contains(buf.String(), "multiplier") {
		t.Error("table rendering broken")
	}
}
