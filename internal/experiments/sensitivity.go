package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/partition"
)

// SensitivityRow is one (distribution, method) cell of the
// data-distribution sensitivity study — the standard skyline-literature
// sweep (independent / correlated / anti-correlated / clustered) that the
// paper's QWS-only evaluation leaves implicit.
type SensitivityRow struct {
	Distribution dataset.Kind
	Method       partition.Scheme
	Time         time.Duration
	SkylineSize  int
	LocalTotal   int
	Optimality   float64
}

// Sensitivity runs every method over every benchmark distribution at the
// given cardinality and dimensionality.
func Sensitivity(ctx context.Context, sc Scale, n, d int) ([]SensitivityRow, error) {
	kinds := []dataset.Kind{
		dataset.KindIndependent,
		dataset.KindCorrelated,
		dataset.KindAnticorrelated,
		dataset.KindClustered,
	}
	var rows []SensitivityRow
	for _, kind := range kinds {
		data := dataset.Generate(kind, sc.Seed, n, d)
		for _, scheme := range Methods {
			global, stats, err := driver.Compute(ctx, data, driver.Options{
				Scheme:  scheme,
				Nodes:   sc.Nodes,
				Workers: sc.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("sensitivity %v/%v: %w", kind, scheme, err)
			}
			rows = append(rows, SensitivityRow{
				Distribution: kind,
				Method:       scheme,
				Time:         stats.Timing.Total,
				SkylineSize:  len(global),
				LocalTotal:   stats.LocalSkylineTotal(),
				Optimality:   metrics.LocalSkylineOptimality(stats.LocalSkylines, global),
			})
		}
	}
	return rows, nil
}

// WriteSensitivity renders the rows.
func WriteSensitivity(w io.Writer, rows []SensitivityRow, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s%-10s%12s%10s%10s%12s\n",
		"distribution", "method", "time", "skyline", "localsky", "optimality")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s%-10s%12s%10d%10d%12.3f\n",
			r.Distribution, r.Method, r.Time.Round(time.Microsecond),
			r.SkylineSize, r.LocalTotal, r.Optimality)
	}
}
