package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/points"
	"repro/internal/skyline"
)

func randomSet(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		s[i] = p
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 16); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := New(points.Set{{1, 2}}, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := New(points.Set{{1, 2}, {3}}, 8); err == nil {
		t.Error("ragged set accepted")
	}
}

func TestStructure(t *testing.T) {
	s := randomSet(1, 1000, 3)
	tr, err := New(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Errorf("Len = %d", tr.Len())
	}
	if h := tr.Height(); h < 2 || h > 5 {
		t.Errorf("Height = %d, implausible for 1000 points at fanout 16", h)
	}
	// All points findable via a full-space search.
	lo, hi := s.Bounds()
	got := tr.Search(lo, hi)
	if len(got) != len(s) {
		t.Errorf("full search returned %d of %d", len(got), len(s))
	}
}

func TestMBRsContainChildren(t *testing.T) {
	s := randomSet(2, 500, 2)
	tr, err := New(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			for _, p := range n.entries {
				if !inBox(p, n.lo, n.hi) {
					t.Fatalf("point %v outside leaf MBR [%v, %v]", p, n.lo, n.hi)
				}
			}
			return
		}
		for _, c := range n.children {
			for i := range c.lo {
				if c.lo[i] < n.lo[i] || c.hi[i] > n.hi[i] {
					t.Fatalf("child MBR [%v,%v] escapes parent [%v,%v]", c.lo, c.hi, n.lo, n.hi)
				}
			}
			walk(c)
		}
	}
	walk(tr.root)
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSet(3, 800, 3)
	tr, err := New(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := points.Point{rng.Float64() * 80, rng.Float64() * 80, rng.Float64() * 80}
		hi := points.Point{lo[0] + 25, lo[1] + 25, lo[2] + 25}
		got := tr.Search(lo, hi)
		var want points.Set
		for _, p := range s {
			if inBox(p, lo, hi) {
				want = append(want, p)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: search %d, brute force %d", trial, len(got), len(want))
		}
	}
}

func TestSearchEmptyBox(t *testing.T) {
	s := randomSet(4, 100, 2)
	tr, err := New(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Search(points.Point{-10, -10}, points.Point{-5, -5})
	if len(got) != 0 {
		t.Errorf("out-of-range search returned %d points", len(got))
	}
}

func TestBBSMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(4)
		n := 1 + rng.Intn(600)
		s := make(points.Set, n)
		for i := range s {
			p := make(points.Point, d)
			for j := range p {
				p[j] = float64(rng.Intn(12))
			}
			s[i] = p
		}
		tr, err := New(s, 2+rng.Intn(14))
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Skyline(nil)
		want := skyline.Naive(s)
		if !sameMultiset(got, want) {
			t.Fatalf("trial %d d=%d n=%d: BBS %d, oracle %d", trial, d, n, len(got), len(want))
		}
	}
}

func sameMultiset(a, b points.Set) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, p := range a {
		count[points.Key(p)]++
	}
	for _, p := range b {
		count[points.Key(p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestBBSProgressiveOrder(t *testing.T) {
	s := randomSet(6, 2000, 3)
	tr, err := New(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []float64
	sky := tr.Skyline(func(p points.Point) {
		emitted = append(emitted, l1(p))
	})
	if len(emitted) != len(sky) {
		t.Fatalf("emitted %d, returned %d", len(emitted), len(sky))
	}
	if !sort.Float64sAreSorted(emitted) {
		t.Error("BBS emission not in nondecreasing L1 order")
	}
}

func TestBBSDuplicates(t *testing.T) {
	s := points.Set{{1, 1}, {1, 1}, {3, 3}, {0, 5}, {0, 5}}
	tr, err := New(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Skyline(nil)
	want := skyline.Naive(s)
	if !sameMultiset(got, want) {
		t.Errorf("BBS with duplicates: %v, want %v", got, want)
	}
}

func TestBBSVisitsFewEntriesOnCorrelatedData(t *testing.T) {
	// The point of BBS: on data with a small skyline it confirms the
	// skyline after inspecting a fraction of the points. Indirect check:
	// progressive emission completes with the first few L1 values far
	// below the dataset maximum.
	rng := rand.New(rand.NewSource(7))
	s := make(points.Set, 5000)
	for i := range s {
		base := rng.Float64() * 100
		s[i] = points.Point{base + rng.Float64()*5, base + rng.Float64()*5}
	}
	tr, err := New(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	sky := tr.Skyline(nil)
	if len(sky) > len(s)/20 {
		t.Fatalf("correlated skyline suspiciously large: %d", len(sky))
	}
	if !sameMultiset(sky, skyline.BNL(s)) {
		t.Error("BBS disagrees with BNL on correlated data")
	}
}

func BenchmarkBBS(b *testing.B) {
	s := randomSet(8, 20000, 4)
	tr, err := New(s, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Skyline(nil)
	}
}

func BenchmarkSTRBulkLoad(b *testing.B) {
	s := randomSet(9, 20000, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(s, 16); err != nil {
			b.Fatal(err)
		}
	}
}
