// Package rtree is an in-memory R-tree over points, bulk-loaded with the
// Sort-Tile-Recursive (STR) algorithm, plus the branch-and-bound skyline
// (BBS) algorithm of Papadias et al. — the paper's reference [25] and the
// index-based family its Section IV nearest-neighbor reasoning builds on.
// BBS visits R-tree entries in ascending L1 distance from the origin and
// prunes every subtree whose best corner is already dominated, which makes
// it progressive: skyline points stream out in nondecreasing L1 order,
// each before the traversal inspects most of the data.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/points"
)

// DefaultFanout is the node capacity used by New.
const DefaultFanout = 16

// Tree is an immutable, bulk-loaded R-tree.
type Tree struct {
	root   *node
	size   int
	fanout int
}

type node struct {
	lo, hi   points.Point // minimum bounding rectangle
	children []*node      // nil for leaves
	entries  points.Set   // nil for internal nodes
}

// New bulk-loads a tree over the set with the given fanout (node
// capacity). The input must be non-empty and uniform-dimensional; the
// tree keeps references to the input points.
func New(s points.Set, fanout int) (*Tree, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout %d, need >= 2", fanout)
	}
	pts := make(points.Set, len(s))
	copy(pts, s)
	leaves := strPack(pts, fanout)
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, fanout)
	}
	return &Tree{root: level[0], size: len(s), fanout: fanout}, nil
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; n.children != nil; n = n.children[0] {
		h++
	}
	return h
}

// strPack builds leaf nodes via Sort-Tile-Recursive: sort on dimension 0,
// cut into vertical slabs of √(n/fanout) tiles, sort each slab on
// dimension 1, and pack consecutive runs of `fanout` points per leaf.
func strPack(pts points.Set, fanout int) []*node {
	n := len(pts)
	leafCount := (n + fanout - 1) / fanout
	sort.SliceStable(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
	slabs := int(math.Ceil(math.Sqrt(float64(leafCount))))
	if slabs < 1 {
		slabs = 1
	}
	perSlab := (n + slabs - 1) / slabs
	var leaves []*node
	for off := 0; off < n; off += perSlab {
		end := off + perSlab
		if end > n {
			end = n
		}
		slab := pts[off:end]
		if slab.Dim() >= 2 {
			sort.SliceStable(slab, func(i, j int) bool { return slab[i][1] < slab[j][1] })
		}
		for lo := 0; lo < len(slab); lo += fanout {
			hi := lo + fanout
			if hi > len(slab) {
				hi = len(slab)
			}
			leaf := &node{entries: slab[lo:hi]}
			leaf.lo, leaf.hi = boundsOf(slab[lo:hi])
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups one level's nodes (ordered by construction) into
// parents of up to fanout children.
func packNodes(level []*node, fanout int) []*node {
	sort.SliceStable(level, func(i, j int) bool { return level[i].lo[0] < level[j].lo[0] })
	var parents []*node
	for off := 0; off < len(level); off += fanout {
		end := off + fanout
		if end > len(level) {
			end = len(level)
		}
		p := &node{children: level[off:end:end]}
		p.lo = level[off].lo.Clone()
		p.hi = level[off].hi.Clone()
		for _, c := range level[off+1 : end] {
			p.lo.MinWith(c.lo)
			p.hi.MaxWith(c.hi)
		}
		parents = append(parents, p)
	}
	return parents
}

func boundsOf(s points.Set) (lo, hi points.Point) {
	lo = s[0].Clone()
	hi = s[0].Clone()
	for _, p := range s[1:] {
		lo.MinWith(p)
		hi.MaxWith(p)
	}
	return lo, hi
}

// Search returns all indexed points inside the axis-aligned box
// [lo, hi] (inclusive).
func (t *Tree) Search(lo, hi points.Point) points.Set {
	var out points.Set
	var walk func(n *node)
	walk = func(n *node) {
		if !boxesIntersect(n.lo, n.hi, lo, hi) {
			return
		}
		if n.children == nil {
			for _, p := range n.entries {
				if inBox(p, lo, hi) {
					out = append(out, p)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// SearchCounted is Search plus a cost: the number of leaf-entry box
// checks performed. Each check is one componentwise comparison of a
// candidate against the box corner — the same unit the skyline kernels
// count as a dominance test — so callers using corner boxes for
// dominator/victim queries can attribute index probes in the same
// currency as linear scans.
func (t *Tree) SearchCounted(lo, hi points.Point) (points.Set, int64) {
	var out points.Set
	var checks int64
	var walk func(n *node)
	walk = func(n *node) {
		if !boxesIntersect(n.lo, n.hi, lo, hi) {
			return
		}
		if n.children == nil {
			checks += int64(len(n.entries))
			for _, p := range n.entries {
				if inBox(p, lo, hi) {
					out = append(out, p)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out, checks
}

func boxesIntersect(alo, ahi, blo, bhi points.Point) bool {
	for i := range alo {
		if ahi[i] < blo[i] || bhi[i] < alo[i] {
			return false
		}
	}
	return true
}

func inBox(p, lo, hi points.Point) bool {
	for i := range p {
		if p[i] < lo[i] || p[i] > hi[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// BBS

// bbsEntry is a heap element: either an R-tree node or a concrete point.
type bbsEntry struct {
	mindist float64 // L1 norm of the best corner / point
	nd      *node   // nil when pt is set
	pt      points.Point
}

type bbsHeap []bbsEntry

func (h bbsHeap) Len() int            { return len(h) }
func (h bbsHeap) Less(i, j int) bool  { return h[i].mindist < h[j].mindist }
func (h bbsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bbsHeap) Push(x interface{}) { *h = append(*h, x.(bbsEntry)) }
func (h *bbsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func l1(p points.Point) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// Skyline runs BBS and returns the skyline in nondecreasing L1-distance
// order. Emit, when non-nil, receives each skyline point as soon as it is
// confirmed — the progressive interface that lets callers show first
// results while the traversal continues.
func (t *Tree) Skyline(emit func(points.Point)) points.Set {
	var sky points.Set
	h := &bbsHeap{{mindist: l1(t.root.lo), nd: t.root}}
	heap.Init(h)
	for h.Len() > 0 {
		e := heap.Pop(h).(bbsEntry)
		if e.nd != nil {
			// Prune the subtree when its best corner is strictly
			// dominated — every point inside is then strictly dominated
			// too (strictness also preserves coordinate-equal duplicates
			// of skyline points; see package skyline's conventions).
			if strictlyDominatedBy(sky, e.nd.lo) {
				continue
			}
			if e.nd.children == nil {
				for _, p := range e.nd.entries {
					heap.Push(h, bbsEntry{mindist: l1(p), pt: p})
				}
			} else {
				for _, c := range e.nd.children {
					heap.Push(h, bbsEntry{mindist: l1(c.lo), nd: c})
				}
			}
			continue
		}
		p := e.pt
		dominated := false
		for _, s := range sky {
			if points.DominatesOrEqual(s, p) && !s.Equal(p) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		sky = append(sky, p)
		if emit != nil {
			emit(p)
		}
	}
	return sky
}

// strictlyDominatedBy reports whether some skyline member strictly
// dominates corner in every... strictly in at least one dimension with ≤
// in all (the standard strict dominance), which suffices to discard any
// point ≥ corner except coordinate-equals of the dominator — and those
// cannot be ≥ corner unless equal to it, which strictness excludes.
func strictlyDominatedBy(sky points.Set, corner points.Point) bool {
	for _, s := range sky {
		if points.Dominates(s, corner) {
			return true
		}
	}
	return false
}
