// Package asciiplot renders small terminal charts — horizontal stacked
// bars and multi-series line plots — so the experiment harness can show
// the paper's figures, not only their tables, without any graphics
// dependency.
package asciiplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// StackedBars renders one horizontal stacked bar per row. Each row has a
// label and one value per segment; segments share the glyph order of
// segGlyphs across rows. Values must be non-negative.
//
//	servers 4  |████████████▒▒▒▒| 212.2s
func StackedBars(w io.Writer, title string, rowLabels []string, segments [][]float64, segNames []string, format func(total float64) string) error {
	if len(rowLabels) != len(segments) {
		return fmt.Errorf("asciiplot: %d labels for %d rows", len(rowLabels), len(segments))
	}
	const width = 50
	glyphs := []rune{'█', '▒', '░', '▓'}
	maxTotal := 0.0
	for _, segs := range segments {
		total := 0.0
		for _, v := range segs {
			if v < 0 {
				return fmt.Errorf("asciiplot: negative segment value %g", v)
			}
			total += v
		}
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	labelWidth := 0
	for _, l := range rowLabels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for i, segs := range segments {
		fmt.Fprintf(w, "%-*s |", labelWidth, rowLabels[i])
		total := 0.0
		used := 0
		for si, v := range segs {
			n := int(math.Round(v / maxTotal * width))
			if used+n > width {
				n = width - used
			}
			fmt.Fprint(w, strings.Repeat(string(glyphs[si%len(glyphs)]), n))
			used += n
			total += v
		}
		fmt.Fprint(w, strings.Repeat(" ", width-used))
		fmt.Fprint(w, "|")
		if format != nil {
			fmt.Fprintf(w, " %s", format(total))
		}
		fmt.Fprintln(w)
	}
	if len(segNames) > 0 {
		fmt.Fprint(w, "legend:")
		for si, name := range segNames {
			fmt.Fprintf(w, "  %c %s", glyphs[si%len(glyphs)], name)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Bars renders one plain horizontal bar per row, with an optional
// per-row annotation after the bar:
//
//	p3 |██████████████████                | 1204  opt 0.72
func Bars(w io.Writer, title string, rowLabels []string, values []float64, annotate func(row int) string) error {
	if len(rowLabels) != len(values) {
		return fmt.Errorf("asciiplot: %d labels for %d values", len(rowLabels), len(values))
	}
	const width = 34
	maxV := 0.0
	for _, v := range values {
		if v < 0 {
			return fmt.Errorf("asciiplot: negative bar value %g", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	labelWidth := 0
	for _, l := range rowLabels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for i, v := range values {
		n := int(math.Round(v / maxV * width))
		fmt.Fprintf(w, "%-*s |%s%s|", labelWidth, rowLabels[i],
			strings.Repeat("█", n), strings.Repeat(" ", width-n))
		if annotate != nil {
			if a := annotate(i); a != "" {
				fmt.Fprintf(w, " %s", a)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Lines renders a multi-series plot on a character grid: x positions are
// the equally-spaced labels, y is auto-scaled over all series. Each
// series is drawn with its own marker.
func Lines(w io.Writer, title string, xLabels []string, series [][]float64, seriesNames []string, formatY func(float64) string) error {
	if len(series) == 0 {
		return fmt.Errorf("asciiplot: no series")
	}
	for _, s := range series {
		if len(s) != len(xLabels) {
			return fmt.Errorf("asciiplot: series length %d, want %d", len(s), len(xLabels))
		}
	}
	markers := []rune{'A', 'B', 'C', 'D', 'E'}
	const height, colWidth = 12, 8
	gridW := len(xLabels) * colWidth
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", gridW))
	}
	for si, s := range series {
		for xi, v := range s {
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			col := xi*colWidth + colWidth/2
			cell := grid[row][col]
			if cell == ' ' {
				grid[row][col] = markers[si%len(markers)]
			} else if cell != markers[si%len(markers)] {
				grid[row][col] = '*' // collision of different series
			}
		}
	}
	if formatY == nil {
		formatY = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	fmt.Fprintf(w, "%s\n", title)
	yTop, yBot := formatY(hi), formatY(lo)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", gridW))
	fmt.Fprintf(w, "%s  ", strings.Repeat(" ", margin))
	for _, xl := range xLabels {
		fmt.Fprintf(w, "%-*s", colWidth, xl)
	}
	fmt.Fprintln(w)
	if len(seriesNames) > 0 {
		fmt.Fprint(w, "legend:")
		for si, name := range seriesNames {
			fmt.Fprintf(w, "  %c=%s", markers[si%len(markers)], name)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// sparkGlyphs are the eighth-block ramp used by Spark.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line unicode sparkline, scaled from 0 to
// the maximum value (so bar heights compare absolute magnitudes, the
// right reading for partition-load skew). Empty input yields "", and an
// all-zero series renders as all-minimum bars.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	var hi float64
	for _, v := range values {
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > 0 && v > 0 {
			idx = int(v / hi * float64(len(sparkGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkGlyphs) {
				idx = len(sparkGlyphs) - 1
			}
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}
