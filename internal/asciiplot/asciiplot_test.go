package asciiplot

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestStackedBars(t *testing.T) {
	var buf bytes.Buffer
	err := StackedBars(&buf, "Fig 6",
		[]string{"4", "8", "32"},
		[][]float64{{156, 56}, {58, 61}, {21, 74}},
		[]string{"map", "reduce"},
		func(total float64) string { return fmt.Sprintf("%.0fs", total) })
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 6") || !strings.Contains(out, "legend:") {
		t.Errorf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "212s") {
		t.Errorf("missing formatted total:\n%s", out)
	}
	// The 4-server bar should be the longest.
	lines := strings.Split(out, "\n")
	count := func(l string) int { return strings.Count(l, "█") + strings.Count(l, "▒") }
	if count(lines[1]) <= count(lines[3]) {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
}

func TestStackedBarsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := StackedBars(&buf, "t", []string{"a"}, nil, nil, nil); err == nil {
		t.Error("mismatched rows accepted")
	}
	if err := StackedBars(&buf, "t", []string{"a"}, [][]float64{{-1}}, nil, nil); err == nil {
		t.Error("negative value accepted")
	}
}

func TestStackedBarsAllZero(t *testing.T) {
	var buf bytes.Buffer
	if err := StackedBars(&buf, "t", []string{"a"}, [][]float64{{0, 0}}, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLines(t *testing.T) {
	var buf bytes.Buffer
	err := Lines(&buf, "Fig 5",
		[]string{"2", "4", "6", "8", "10"},
		[][]float64{
			{48, 75, 157, 497, 7540},
			{39, 90, 202, 481, 7672},
			{54, 88, 119, 225, 6405},
		},
		[]string{"MR-Dim", "MR-Grid", "MR-Angle"},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 5", "A=MR-Dim", "C=MR-Angle", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Markers must appear somewhere on the grid.
	if !strings.ContainsAny(out, "ABC*") {
		t.Errorf("no data markers:\n%s", out)
	}
}

func TestLinesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Lines(&buf, "t", []string{"1"}, nil, nil, nil); err == nil {
		t.Error("no series accepted")
	}
	if err := Lines(&buf, "t", []string{"1", "2"}, [][]float64{{1}}, nil, nil); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestLinesConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Lines(&buf, "t", []string{"1", "2"}, [][]float64{{5, 5}}, []string{"s"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpark(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Fatalf("Spark(nil) = %q, want empty", got)
	}
	got := Spark([]float64{0, 1, 2, 4})
	runes := []rune(got)
	if len(runes) != 4 {
		t.Fatalf("Spark length = %d, want 4: %q", len(runes), got)
	}
	if runes[0] != '▁' {
		t.Errorf("zero cell = %q, want ▁", runes[0])
	}
	if runes[3] != '█' {
		t.Errorf("max cell = %q, want █", runes[3])
	}
	// Monotone input yields monotone glyph heights.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("sparkline not monotone: %q", got)
		}
	}
	if got := Spark([]float64{0, 0, 0}); got != "▁▁▁" {
		t.Errorf("all-zero spark = %q, want ▁▁▁", got)
	}
}
