package asciiplot

import (
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// FlightChart renders a flight-recorder report as the per-partition
// load/optimality bar chart the paper's Figures 7 and 8 tabulate: one bar
// per partition scaled by its load (input records when known, local
// skyline size otherwise), annotated with the local skyline size and the
// Eq. (5) optimality ratio, followed by the skew/straggler rollups.
func FlightChart(w io.Writer, rep *telemetry.Report) error {
	if rep == nil {
		return fmt.Errorf("asciiplot: nil flight report")
	}
	labels := make([]string, len(rep.Partitions))
	loads := make([]float64, len(rep.Partitions))
	haveInput := false
	for _, p := range rep.Partitions {
		if p.InputRecords > 0 {
			haveInput = true
		}
	}
	for i, p := range rep.Partitions {
		labels[i] = fmt.Sprintf("p%d", p.Partition)
		if haveInput {
			loads[i] = float64(p.InputRecords)
		} else {
			loads[i] = float64(p.LocalSkyline)
		}
	}
	title := fmt.Sprintf("flight %s: partition load / local optimality", rep.Job)
	err := Bars(w, title, labels, loads, func(i int) string {
		p := rep.Partitions[i]
		return fmt.Sprintf("%6d  sky %4d  opt %.3f", int64(loads[i]), p.LocalSkyline, p.Optimality)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "optimality %.4f | global skyline %d | skew max/mean %.2f gini %.3f | stragglers %d retries %d failures %d\n",
		rep.Optimality, rep.GlobalSkyline, rep.Skew.Imbalance, rep.Skew.Gini,
		rep.Stragglers, rep.TaskRetries, rep.WorkerFailures)
	return nil
}
