package asciiplot

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/telemetry/critpath"
)

// fmtSecs renders a duration in seconds at a precision fit for the
// magnitude — µs-scale in-process runs would otherwise print every row
// as "0.000s".
func fmtSecs(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", s)
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

// phaseGlyphs maps critical-path phases to waterfall fill characters so
// the chart reads phase structure at a glance without color.
var phaseGlyphs = map[string]rune{
	critpath.PhaseMap:        '█',
	critpath.PhaseShuffle:    '▒',
	critpath.PhaseReduce:     '▓',
	critpath.PhaseCoordinate: '░',
}

// CritPathChart renders a critical-path analysis as an ASCII waterfall
// — one row per critical segment, indented to its offset in the run and
// filled with its phase's glyph — followed by the phase/worker blame
// rollups and the what-if predictions. This is the terminal version of
// the question "where did the makespan go": reading top to bottom is
// reading the job's wall clock.
func CritPathChart(w io.Writer, a *critpath.Analysis) error {
	if a == nil {
		return fmt.Errorf("asciiplot: nil critical-path analysis")
	}
	const width = 50
	fmt.Fprintf(w, "critical path %s: makespan %s over %d segments\n",
		a.Job, fmtSecs(a.MakespanSeconds), len(a.CriticalPath))
	if a.MakespanSeconds <= 0 {
		return nil
	}
	// Sub-1% segments (poll gaps, µs-scale dispatch) would drown the
	// waterfall in one-glyph rows; fold them into a footer count.
	var rows []critpath.Segment
	var folded int
	var foldedSecs float64
	for _, s := range a.CriticalPath {
		if s.Seconds >= a.MakespanSeconds*0.01 {
			rows = append(rows, s)
		} else {
			folded++
			foldedSecs += s.Seconds
		}
	}
	labelWidth := 0
	labels := make([]string, len(rows))
	for i, s := range rows {
		l := s.Span
		if s.Gap {
			l += " (wait)"
		}
		if s.Worker != "" {
			l += " @" + s.Worker
		}
		labels[i] = l
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i, s := range rows {
		lead := int(math.Round(s.Start / a.MakespanSeconds * width))
		n := int(math.Round(s.Seconds / a.MakespanSeconds * width))
		if lead+n > width {
			n = width - lead
		}
		if n < 1 {
			n = 1
			if lead+n > width {
				lead = width - n
			}
		}
		glyph, ok := phaseGlyphs[s.Phase]
		if !ok {
			glyph = '?'
		}
		fmt.Fprintf(w, "%-*s |%s%s%s| %9s\n", labelWidth, labels[i],
			strings.Repeat(" ", lead), strings.Repeat(string(glyph), n),
			strings.Repeat(" ", width-lead-n), fmtSecs(s.Seconds))
	}
	if folded > 0 {
		fmt.Fprintf(w, "(+ %d segments under 1%% of the makespan, %s together)\n", folded, fmtSecs(foldedSecs))
	}
	fmt.Fprint(w, "phases:")
	for _, p := range a.Phases {
		fmt.Fprintf(w, "  %c %s %s (%.0f%%)", phaseGlyphs[p.Phase], p.Phase, fmtSecs(p.Seconds), p.Share*100)
	}
	fmt.Fprintln(w)
	if len(a.Workers) > 0 {
		fmt.Fprint(w, "workers:")
		for _, wk := range a.Workers {
			mark := ""
			if wk.Straggler {
				mark = " STRAGGLER"
			}
			fmt.Fprintf(w, "  %s %s (%.0f%%)%s", wk.Worker, fmtSecs(wk.Seconds), wk.Share*100, mark)
		}
		fmt.Fprintln(w)
	}
	for _, s := range a.WhatIf {
		fmt.Fprintf(w, "what-if %-15s %9s  %5.2fx  %s\n", s.Name, fmtSecs(s.PredictedSeconds), s.SpeedupX, s.Detail)
	}
	if c := a.SkewCheck; c != nil {
		fmt.Fprintf(w, "skew check: flight %.2fx gini %.3f vs worker busy %.2fx — %s\n",
			c.FlightImbalance, c.FlightGini, c.WorkerBusyImbalance, c.Note)
	}
	return nil
}
