package skymr

import (
	"bytes"
	"context"
	"math"
	"testing"
)

func TestComputeConstrained(t *testing.T) {
	data := uniform(91, 2000, 2)
	c := Constraint{
		Min: []float64{0, 0},
		Max: []float64{50, 50},
	}
	res, err := ComputeConstrained(context.Background(), data, c, Options{Method: Angle})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: filter then sequential skyline.
	var filtered Set
	for _, p := range data {
		if c.Matches(p) {
			filtered = append(filtered, p)
		}
	}
	want := Skyline(filtered)
	if !sameMultiset(res.Skyline, want) {
		t.Errorf("constrained skyline %d points, oracle %d", len(res.Skyline), len(want))
	}
	for _, p := range res.Skyline {
		if p[0] > 50 || p[1] > 50 {
			t.Errorf("out-of-region point %v in constrained skyline", p)
		}
	}
}

func TestConstrainedRevealsHiddenPoints(t *testing.T) {
	// (60, 60) is dominated by (1, 1) globally, but inside the region
	// x,y ≥ 50 it is the best service and must surface.
	data := Set{{1, 1}, {60, 60}, {70, 80}, {90, 55}}
	c := Constraint{Min: []float64{50, 50}, Max: nil}
	res, err := ComputeConstrained(context.Background(), data, c, Options{Method: Grid, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skyline.Contains(Point{60, 60}) {
		t.Errorf("constrained skyline %v missing the in-region optimum", res.Skyline)
	}
	if res.Skyline.Contains(Point{1, 1}) {
		t.Error("out-of-region point included")
	}
}

func TestConstraintValidation(t *testing.T) {
	data := uniform(92, 20, 3)
	if _, err := ComputeConstrained(context.Background(), data, Constraint{Min: []float64{0}}, Options{}); err == nil {
		t.Error("short min accepted")
	}
	if _, err := ComputeConstrained(context.Background(), data, Constraint{Max: []float64{0, 0}}, Options{}); err == nil {
		t.Error("short max accepted")
	}
	bad := Constraint{Min: []float64{5, 5, 5}, Max: []float64{1, 9, 9}}
	if _, err := ComputeConstrained(context.Background(), data, bad, Options{}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := ComputeConstrained(context.Background(), nil, Constraint{}, Options{}); err == nil {
		t.Error("empty data accepted")
	}
}

func TestConstrainedNoMatches(t *testing.T) {
	data := uniform(93, 50, 2)
	c := Constraint{Min: []float64{1e9, 1e9}}
	res, err := ComputeConstrained(context.Background(), data, c, Options{Method: Angle})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 0 {
		t.Errorf("skyline %v from empty region", res.Skyline)
	}
}

func TestUnbounded(t *testing.T) {
	lo := Unbounded(3, false)
	hi := Unbounded(3, true)
	if !math.IsInf(lo[0], -1) || !math.IsInf(hi[2], 1) {
		t.Errorf("Unbounded = %v / %v", lo, hi)
	}
	c := Constraint{Min: lo, Max: hi}
	if !c.Matches(Point{1, 2, 3}) {
		t.Error("unbounded constraint rejected a point")
	}
}

func TestPublicIndexSnapshot(t *testing.T) {
	data := uniform(94, 300, 2)
	ix, err := BuildIndex(context.Background(), data, Options{Method: Angle})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadIndex(context.Background(), &buf, Options{Method: Angle})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(restored.Global(), ix.Global()) {
		t.Error("restored index global skyline differs")
	}
	// Adds still work after restore.
	if _, in, err := restored.Add(Point{-1, -1}); err != nil || !in {
		t.Errorf("post-restore add: in=%v err=%v", in, err)
	}
}
