package skymr

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIToolsEndToEnd drives the single-machine CLI tools as real
// processes: generate a dataset with qwsgen, describe it, compute its
// skyline with skyline (MapReduce and sequential paths), and run a quick
// skybench figure. Skipped with -short.
func TestCLIToolsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	goRun := func(args ...string) string {
		t.Helper()
		cmd := exec.CommandContext(ctx, "go", append([]string{"run"}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	csv := filepath.Join(dir, "qws.csv")
	goRun("./cmd/qwsgen", "-n", "800", "-d", "4", "-seed", "5", "-o", csv)
	if info, err := os.Stat(csv); err != nil || info.Size() == 0 {
		t.Fatalf("qwsgen produced nothing: %v", err)
	}

	describe := goRun("./cmd/qwsgen", "-n", "500", "-d", "3", "-describe")
	if !strings.Contains(describe, "ResponseTime") || !strings.Contains(describe, "pairwise correlation") {
		t.Errorf("describe output missing sections:\n%s", describe)
	}

	mrOut := goRun("./cmd/skyline", "-method", "angle", "-header", csv)
	seqOut := goRun("./cmd/skyline", "-method", "seq", "-header", csv)
	mrLines := strings.Count(strings.TrimSpace(mrOut), "\n") + 1
	seqLines := strings.Count(strings.TrimSpace(seqOut), "\n") + 1
	if mrLines != seqLines {
		t.Errorf("MapReduce skyline has %d rows, sequential %d", mrLines, seqLines)
	}
	if mrLines < 3 {
		t.Errorf("implausibly small skyline: %d rows", mrLines)
	}

	// A reducer budget small enough to force spill passes must not change
	// the skyline (row order may differ — compare as sets).
	budOut := goRun("./cmd/skyline", "-method", "angle", "-header", "-reducer-budget", "4096", csv)
	asSet := func(out string) map[string]bool {
		set := make(map[string]bool)
		for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
			set[line] = true
		}
		return set
	}
	mrSet, budSet := asSet(mrOut), asSet(budOut)
	if len(mrSet) != len(budSet) {
		t.Errorf("budgeted skyline has %d distinct rows, unbudgeted %d", len(budSet), len(mrSet))
	}
	for row := range mrSet {
		if !budSet[row] {
			t.Errorf("budgeted skyline missing row %s", row)
		}
	}

	repOut := goRun("./cmd/skyline", "-method", "angle", "-header", "-rep", "3", csv)
	if got := strings.Count(strings.TrimSpace(repOut), "\n") + 1; got != 4 { // header + 3 rows
		t.Errorf("representative output has %d lines, want 4", got)
	}

	bench := goRun("./cmd/skybench", "-figure", "thm")
	if !strings.Contains(bench, "D_angle") || !strings.Contains(bench, "completed in") {
		t.Errorf("skybench thm output unexpected:\n%s", bench)
	}
}
