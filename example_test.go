package skymr_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	skymr "repro"
)

// The paper's Figure 1: eight services in (response time, cost) space;
// s1..s7 form the skyline, s8 is dominated.
func Example() {
	services := skymr.Set{
		{1, 9},     // s1
		{2, 7},     // s2
		{3, 5},     // s3
		{4, 4},     // s4
		{5.5, 3.5}, // s5
		{7, 3},     // s6
		{9, 1},     // s7
		{7.5, 6},   // s8 — dominated by s3, s4, s5
	}
	res, err := skymr.Compute(context.Background(), services, skymr.Options{
		Method: skymr.Angle,
		Nodes:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d services are on the skyline\n", len(res.Skyline), len(services))
	fmt.Printf("s8 dominated: %v\n", skymr.Dominates(skymr.Point{3, 5}, skymr.Point{7.5, 6}))
	// Output:
	// 7 of 8 services are on the skyline
	// s8 dominated: true
}

func ExampleSkyline() {
	data := skymr.Set{{1, 3}, {3, 1}, {2, 2}, {4, 4}}
	sky := skymr.Skyline(data)
	fmt.Println(len(sky))
	// Output:
	// 3
}

func ExampleDominates() {
	better := skymr.Point{100, 0.5} // faster and cheaper
	worse := skymr.Point{250, 0.9}
	fmt.Println(skymr.Dominates(better, worse))
	fmt.Println(skymr.Dominates(worse, better))
	// Output:
	// true
	// false
}

func ExampleSkylineBounded() {
	data := skymr.Set{{1, 3}, {3, 1}, {2, 2}, {4, 4}}
	sky, err := skymr.SkylineBounded(data, 2) // window of only 2 candidates
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(sky))
	// Output:
	// 3
}

func ExampleRepresentativeSkyline() {
	// A 100-point anti-chain: every point is on the skyline, far too many
	// to show a user. Pick three spread across the trade-off spectrum.
	var sky skymr.Set
	for i := 0; i < 100; i++ {
		sky = append(sky, skymr.Point{float64(i), float64(100 - i)})
	}
	reps := skymr.RepresentativeSkyline(sky, 3)
	fmt.Println(len(reps))
	// Output:
	// 3
}

func ExampleLoadQWS() {
	raw := "302.75,89,7.1,90,73,78,80,187.75,32,MapPointService,http://x?wsdl\n" +
		"482,85,16,95,73,100,84,1,2,CreditCheck,http://y?wsdl\n"
	data, names, err := skymr.LoadQWS(strings.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(data), data.Dim(), names[0])
	// Output:
	// 2 9 MapPointService
}

func ExampleComputeSkyband() {
	// A chain: each point dominated by exactly the points before it.
	data := skymr.Set{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	band, err := skymr.ComputeSkyband(context.Background(), data, 2, skymr.Options{Method: skymr.Grid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(band)) // the two least-dominated services
	// Output:
	// 2
}

func ExampleComputeConstrained() {
	data := skymr.Set{{1, 1}, {60, 60}, {70, 80}}
	// Restrict to the region x ≥ 50: (60, 60) is the in-region optimum
	// even though (1, 1) dominates it globally.
	res, err := skymr.ComputeConstrained(context.Background(), data,
		skymr.Constraint{Min: []float64{50, 0}}, skymr.Options{Method: skymr.Dim, Nodes: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Skyline), res.Skyline[0])
	// Output:
	// 1 (60, 60)
}

func ExampleBuildIndex() {
	data := skymr.Set{{5, 5}, {2, 8}, {8, 2}}
	ix, err := skymr.BuildIndex(context.Background(), data, skymr.Options{Method: skymr.Angle})
	if err != nil {
		log.Fatal(err)
	}
	_, inGlobal, err := ix.Add(skymr.Point{1, 1}) // dominates everything
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(inGlobal, len(ix.Global()))
	// Output:
	// true 1
}
