package skymr

import (
	"context"
	"fmt"
	"math"
)

// Constraint restricts a skyline query to services whose attributes fall
// inside per-dimension ranges — the paper's §II "QoS demand" that the
// master applies when dispatching data blocks (e.g. "response time below
// 500 ms and availability above 95%"). A nil bound leaves that side open.
type Constraint struct {
	// Min and Max are inclusive per-dimension bounds; either may be nil
	// for no bound on that side. Non-nil slices must match the data
	// dimensionality.
	Min, Max []float64
}

// Matches reports whether p satisfies the constraint.
func (c Constraint) Matches(p Point) bool {
	for j, v := range p {
		if c.Min != nil && v < c.Min[j] {
			return false
		}
		if c.Max != nil && v > c.Max[j] {
			return false
		}
	}
	return true
}

func (c Constraint) validate(dim int) error {
	if c.Min != nil && len(c.Min) != dim {
		return fmt.Errorf("skymr: constraint min has %d dims, want %d", len(c.Min), dim)
	}
	if c.Max != nil && len(c.Max) != dim {
		return fmt.Errorf("skymr: constraint max has %d dims, want %d", len(c.Max), dim)
	}
	if c.Min != nil && c.Max != nil {
		for j := range c.Min {
			if c.Min[j] > c.Max[j] {
				return fmt.Errorf("skymr: constraint dim %d inverted: [%g, %g]", j, c.Min[j], c.Max[j])
			}
		}
	}
	return nil
}

// ComputeConstrained runs the MapReduce skyline over only the services
// satisfying the constraint — the constrained skyline query. The skyline
// is computed within the constrained region, so points that were dominated
// only by out-of-region services reappear (the standard constrained
// skyline semantics).
func ComputeConstrained(ctx context.Context, data Set, c Constraint, opts Options) (*Result, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("skymr: empty dataset")
	}
	if err := c.validate(data.Dim()); err != nil {
		return nil, err
	}
	filtered := make(Set, 0, len(data))
	for _, p := range data {
		if c.Matches(p) {
			filtered = append(filtered, p)
		}
	}
	if len(filtered) == 0 {
		return &Result{Method: opts.Method, LocalSkylines: map[int]Set{}}, nil
	}
	return Compute(ctx, filtered, opts)
}

// Unbounded returns a bound slice usable in Constraint for "no limit"
// dimensions when mixing bounded and unbounded attributes: -Inf for Min,
// +Inf for Max.
func Unbounded(dim int, upper bool) []float64 {
	v := math.Inf(-1)
	if upper {
		v = math.Inf(1)
	}
	out := make([]float64, dim)
	for i := range out {
		out[i] = v
	}
	return out
}
