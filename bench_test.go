// Benchmarks regenerating every figure of the paper's evaluation section.
// Each BenchmarkFigure* measures the work behind one plotted series; the
// printed rows themselves come from `go run ./cmd/skybench` (add -full for
// the paper's 100,000-service scale — the benchmarks here default to a
// 20,000-service "large" dataset to keep `go test -bench=.` minutes, not
// hours; the shape of every comparison is unchanged).
package skymr

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/skyline"
	"repro/internal/telemetry"
	"repro/internal/telemetry/timeseries"
)

const (
	benchSmallN = 1000  // Figure 5(a)/7(a): the paper's small cardinality
	benchLargeN = 20000 // Figure 5(b)/6/7(b): scaled-down large cardinality
	benchNodes  = 4
)

var benchDims = []int{2, 4, 6, 8, 10}

// benchMethods maps public methods to their schemes for sub-bench names.
var benchMethods = []Method{Dim, Grid, Angle}

// figure5 measures one (method, dimension, cardinality) cell of Figure 5.
func benchFigure5(b *testing.B, n int) {
	for _, d := range benchDims {
		data := GenerateQWS(2012, n, d)
		for _, m := range benchMethods {
			b.Run(fmt.Sprintf("%s/d=%d", m, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Compute(context.Background(), data, Options{Method: m, Nodes: benchNodes})
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Skyline) == 0 {
						b.Fatal("empty skyline")
					}
				}
			})
		}
	}
}

// BenchmarkFigure5a: processing time vs dimension, N = 1,000 (paper
// Fig. 5(a): MR-Grid 6–16% and MR-Dim 18–45% slower than MR-Angle).
func BenchmarkFigure5a(b *testing.B) { benchFigure5(b, benchSmallN) }

// BenchmarkFigure5b: processing time vs dimension at large cardinality
// (paper Fig. 5(b): MR-Angle up to 1.7× faster than MR-Grid and 2.3× than
// MR-Dim at d = 10).
func BenchmarkFigure5b(b *testing.B) { benchFigure5(b, benchLargeN) }

// BenchmarkFigure6: Map/Reduce breakdown vs server count for MR-Angle on
// the large dataset at d = 10 (paper Fig. 6: sub-linear speedup that
// saturates past ~24 servers). The algorithmic workload is measured from
// a real run; the per-server-count scheduling is the cluster simulator.
func BenchmarkFigure6(b *testing.B) {
	data := GenerateQWS(2012, benchLargeN, 10)
	cm := cluster.DefaultCostModel()
	for _, servers := range []int{4, 8, 16, 24, 32} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := experiments.WorkloadFor(context.Background(), data, partition.Angular, servers, benchNodes)
				if err != nil {
					b.Fatal(err)
				}
				bd, err := cluster.Simulate(w, servers, cm)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.MapTime.Seconds(), "simMap-s")
				b.ReportMetric(bd.ReduceTime.Seconds(), "simReduce-s")
			}
		})
	}
}

// benchFigure7 measures the optimality computation for one cardinality.
func benchFigure7(b *testing.B, n int) {
	for _, d := range benchDims {
		data := GenerateQWS(2012, n, d)
		for _, m := range benchMethods {
			b.Run(fmt.Sprintf("%s/d=%d", m, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Compute(context.Background(), data, Options{Method: m, Nodes: benchNodes})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Optimality(), "optimality")
				}
			})
		}
	}
}

// BenchmarkFigure7a: local skyline optimality vs dimension, N = 1,000
// (paper Fig. 7(a): MR-Angle peaks at 0.61 and beats both baselines).
func BenchmarkFigure7a(b *testing.B) { benchFigure7(b, benchSmallN) }

// BenchmarkFigure7b: same at large cardinality (paper Fig. 7(b): the gap
// widens).
func BenchmarkFigure7b(b *testing.B) { benchFigure7(b, benchLargeN) }

// BenchmarkTheorems12: the Section IV dominance-ability computation —
// closed forms plus the Monte-Carlo verification sweep.
func BenchmarkTheorems12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.TheoremTable(100000, 1)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTableAblations: the DESIGN.md ablation table (combiner,
// pruning, kernels, random baseline) on a mid-size dataset.
func BenchmarkTableAblations(b *testing.B) {
	sc := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(context.Background(), sc, 4000, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 6 {
			b.Fatal("missing ablation rows")
		}
	}
}

// BenchmarkTableSensitivity: the distribution-sensitivity table
// (independent / correlated / anticorrelated / clustered × methods).
func BenchmarkTableSensitivity(b *testing.B) {
	sc := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sensitivity(context.Background(), sc, 4000, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTablePartitionCount: the partitions-per-node study around the
// paper's 2× rule.
func BenchmarkTablePartitionCount(b *testing.B) {
	sc := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PartitionCount(context.Background(), sc, 4000, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEq5Optimality isolates the metric itself (Eq. 5) at scale.
func BenchmarkEq5Optimality(b *testing.B) {
	data := qws.Dataset(2012, benchLargeN, 6)
	res, err := Compute(context.Background(), data, Options{Method: Angle, Nodes: benchNodes})
	if err != nil {
		b.Fatal(err)
	}
	local := make(map[int]Set, len(res.LocalSkylines))
	for id, s := range res.LocalSkylines {
		local[id] = s
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		metrics.LocalSkylineOptimality(local, res.Skyline)
	}
}

// BenchmarkSkyline pins the telemetry layer's hot-path cost and the
// kernel-path split: the same MR-Angle computation with telemetry absent
// (the library default, flat kernels), with a metrics registry attached,
// with span tracing on, and with the ClassicKernel escape hatch. The off
// variant is the regression gate; kernel=classic vs kernel=flat is the
// quick-scale version of the comparison cmd/benchgate records in
// BENCH_kernels.json at the paper's n=100k, d=6 configuration.
func BenchmarkSkyline(b *testing.B) {
	data := qws.Generate(2012, benchSmallN, 4)
	run := func(b *testing.B, opts driver.Options, ctx context.Context) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sky, _, err := driver.Compute(ctx, data, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(sky) == 0 {
				b.Fatal("empty skyline")
			}
		}
	}
	base := driver.Options{Scheme: partition.Angular, Nodes: benchNodes}
	b.Run("telemetry=off", func(b *testing.B) {
		run(b, base, context.Background())
	})
	b.Run("telemetry=metrics", func(b *testing.B) {
		opts := base
		opts.Metrics = telemetry.NewRegistry()
		run(b, opts, context.Background())
	})
	b.Run("telemetry=metrics+trace", func(b *testing.B) {
		opts := base
		opts.Metrics = telemetry.NewRegistry()
		tr := telemetry.NewTracer()
		run(b, opts, telemetry.WithTracer(context.Background(), tr))
	})
	// events=off vs events=on is the live-operations regression gate:
	// the event log hears only job/phase/task/spill boundaries — never
	// per-record work — so the instrumented run must stay within noise
	// (< 2%) of the uninstrumented one.
	b.Run("events=off", func(b *testing.B) {
		run(b, base, context.Background())
	})
	// The ring wraps during the run (as any long-lived process's does),
	// so the split measures steady-state recycling, not cold fill.
	b.Run("events=on", func(b *testing.B) {
		log := telemetry.NewEventLog(256)
		run(b, base, telemetry.WithEventLog(context.Background(), log))
	})
	// sampling=off vs sampling=on is the observability-plane regression
	// gate: a background sampler ticking the registry plus a watchdog
	// evaluating its rules must not slow the computation itself — the
	// sample path reads atomics and writes ring slots, never touching the
	// compute goroutines. cmd/benchgate's obs suite enforces ≤1.05×.
	b.Run("sampling=off", func(b *testing.B) {
		opts := base
		opts.Metrics = telemetry.NewRegistry()
		run(b, opts, context.Background())
	})
	b.Run("sampling=on", func(b *testing.B) {
		opts := base
		reg := telemetry.NewRegistry()
		opts.Metrics = reg
		sampler := timeseries.NewSampler(reg, timeseries.Config{Interval: 10 * time.Millisecond, Retention: 512})
		sampler.Start()
		defer sampler.Stop()
		wd := timeseries.NewWatchdog(sampler, timeseries.WatchdogConfig{
			Interval: 20 * time.Millisecond,
			Metrics:  reg,
		}, timeseries.RateAboveRule("gc-pause-spike", "process_gc_pause_seconds_total", 0.05, time.Second))
		wd.Start()
		defer wd.Stop()
		run(b, opts, context.Background())
	})
	b.Run("kernel=flat", func(b *testing.B) {
		run(b, base, context.Background())
	})
	b.Run("kernel=classic", func(b *testing.B) {
		opts := base
		opts.ClassicKernel = true
		run(b, opts, context.Background())
	})
}

// benchKernelDims spans a specialized dimension (2, 6) and the generic
// fallback (10) for the flat-kernel micro-benchmarks.
var benchKernelDims = []int{2, 6, 10}

// benchRows draws n quantized random rows of dimension d (ties common,
// like real QoS data after discretization).
func benchRows(seed int64, n, d int) []points.Point {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]points.Point, n)
	for i := range rows {
		p := make(points.Point, d)
		for j := range p {
			p[j] = float64(rng.Intn(64))
		}
		rows[i] = p
	}
	return rows
}

// BenchmarkDominance isolates the single pairwise test: the full classic
// BNL window probe (dominated? strictly-dominates? — up to three generic
// scans, exactly the sequence in skyline.BNL's inner loop) versus one
// call of the dimension-specialized relation kernel over block rows.
//
// Read this one carefully: at 1024 rows everything sits in L1 either way,
// so what remains is dispatch — the flat side pays an indirect call
// through the relFunc pointer (~1ns/pair here) that direct calls to the
// points predicates don't. That overhead is real but fixed; the flat
// path's wins (contiguous layout at real working-set sizes, one pass for
// the full four-way relation, swap-delete eviction) scale with n and d,
// which is why BenchmarkLocalSkyline and BenchmarkMergeTree favour flat
// while this micro slightly favours classic.
func BenchmarkDominance(b *testing.B) {
	for _, d := range benchKernelDims {
		rows := benchRows(2012, 1024, d)
		b.Run(fmt.Sprintf("d=%d/classic", d), func(b *testing.B) {
			sink := false
			for i := 0; i < b.N; i++ {
				p, q := rows[i%1024], rows[(i*7+1)%1024]
				sink = (points.DominatesOrEqual(q, p) && !q.Equal(p)) || points.Dominates(p, q)
			}
			_ = sink
		})
		rel := skyline.RelationKernel(d)
		blk, ok := points.BlockOf(points.Set(rows))
		if !ok {
			b.Fatal("mixed-dimension bench rows")
		}
		b.Run(fmt.Sprintf("d=%d/flat", d), func(b *testing.B) {
			var sink skyline.Relation
			for i := 0; i < b.N; i++ {
				sink = rel(blk.Row(i%1024), blk.Row((i*7+1)%1024))
			}
			_ = sink
		})
	}
}

// BenchmarkLocalSkyline is the partitioning job's reducer workload: one
// full local-skyline computation, classic BNL versus the flat block BNL.
func BenchmarkLocalSkyline(b *testing.B) {
	for _, d := range benchKernelDims {
		data := qws.Dataset(2012, benchLargeN, d)
		b.Run(fmt.Sprintf("d=%d/classic", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(skyline.BNL(data)) == 0 {
					b.Fatal("empty skyline")
				}
			}
		})
		b.Run(fmt.Sprintf("d=%d/flat", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(skyline.FlatBNL(data)) == 0 {
					b.Fatal("empty skyline")
				}
			}
		})
	}
}

// BenchmarkMergeTree is the merging job's reducer workload: fold 16
// partial skylines into the global one, sequential concat+BNL versus the
// parallel merge tree.
func BenchmarkMergeTree(b *testing.B) {
	const chunks = 16
	for _, d := range benchKernelDims {
		data := qws.Dataset(2012, benchLargeN, d)
		partials := make([]points.Set, 0, chunks)
		step := (len(data) + chunks - 1) / chunks
		for lo := 0; lo < len(data); lo += step {
			hi := lo + step
			if hi > len(data) {
				hi = len(data)
			}
			partials = append(partials, skyline.FlatBNL(data[lo:hi]))
		}
		b.Run(fmt.Sprintf("d=%d/classic", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var union points.Set
				for _, p := range partials {
					union = append(union, p...)
				}
				if len(skyline.BNL(union)) == 0 {
					b.Fatal("empty skyline")
				}
			}
		})
		b.Run(fmt.Sprintf("d=%d/flat", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(skyline.MergeSkylines(context.Background(), partials, 0)) == 0 {
					b.Fatal("empty skyline")
				}
			}
		})
	}
}
