// Benchmarks regenerating every figure of the paper's evaluation section.
// Each BenchmarkFigure* measures the work behind one plotted series; the
// printed rows themselves come from `go run ./cmd/skybench` (add -full for
// the paper's 100,000-service scale — the benchmarks here default to a
// 20,000-service "large" dataset to keep `go test -bench=.` minutes, not
// hours; the shape of every comparison is unchanged).
package skymr

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/qws"
	"repro/internal/telemetry"
)

const (
	benchSmallN = 1000  // Figure 5(a)/7(a): the paper's small cardinality
	benchLargeN = 20000 // Figure 5(b)/6/7(b): scaled-down large cardinality
	benchNodes  = 4
)

var benchDims = []int{2, 4, 6, 8, 10}

// benchMethods maps public methods to their schemes for sub-bench names.
var benchMethods = []Method{Dim, Grid, Angle}

// figure5 measures one (method, dimension, cardinality) cell of Figure 5.
func benchFigure5(b *testing.B, n int) {
	for _, d := range benchDims {
		data := GenerateQWS(2012, n, d)
		for _, m := range benchMethods {
			b.Run(fmt.Sprintf("%s/d=%d", m, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Compute(context.Background(), data, Options{Method: m, Nodes: benchNodes})
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Skyline) == 0 {
						b.Fatal("empty skyline")
					}
				}
			})
		}
	}
}

// BenchmarkFigure5a: processing time vs dimension, N = 1,000 (paper
// Fig. 5(a): MR-Grid 6–16% and MR-Dim 18–45% slower than MR-Angle).
func BenchmarkFigure5a(b *testing.B) { benchFigure5(b, benchSmallN) }

// BenchmarkFigure5b: processing time vs dimension at large cardinality
// (paper Fig. 5(b): MR-Angle up to 1.7× faster than MR-Grid and 2.3× than
// MR-Dim at d = 10).
func BenchmarkFigure5b(b *testing.B) { benchFigure5(b, benchLargeN) }

// BenchmarkFigure6: Map/Reduce breakdown vs server count for MR-Angle on
// the large dataset at d = 10 (paper Fig. 6: sub-linear speedup that
// saturates past ~24 servers). The algorithmic workload is measured from
// a real run; the per-server-count scheduling is the cluster simulator.
func BenchmarkFigure6(b *testing.B) {
	data := GenerateQWS(2012, benchLargeN, 10)
	cm := cluster.DefaultCostModel()
	for _, servers := range []int{4, 8, 16, 24, 32} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := experiments.WorkloadFor(context.Background(), data, partition.Angular, servers, benchNodes)
				if err != nil {
					b.Fatal(err)
				}
				bd, err := cluster.Simulate(w, servers, cm)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.MapTime.Seconds(), "simMap-s")
				b.ReportMetric(bd.ReduceTime.Seconds(), "simReduce-s")
			}
		})
	}
}

// benchFigure7 measures the optimality computation for one cardinality.
func benchFigure7(b *testing.B, n int) {
	for _, d := range benchDims {
		data := GenerateQWS(2012, n, d)
		for _, m := range benchMethods {
			b.Run(fmt.Sprintf("%s/d=%d", m, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Compute(context.Background(), data, Options{Method: m, Nodes: benchNodes})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Optimality(), "optimality")
				}
			})
		}
	}
}

// BenchmarkFigure7a: local skyline optimality vs dimension, N = 1,000
// (paper Fig. 7(a): MR-Angle peaks at 0.61 and beats both baselines).
func BenchmarkFigure7a(b *testing.B) { benchFigure7(b, benchSmallN) }

// BenchmarkFigure7b: same at large cardinality (paper Fig. 7(b): the gap
// widens).
func BenchmarkFigure7b(b *testing.B) { benchFigure7(b, benchLargeN) }

// BenchmarkTheorems12: the Section IV dominance-ability computation —
// closed forms plus the Monte-Carlo verification sweep.
func BenchmarkTheorems12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.TheoremTable(100000, 1)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTableAblations: the DESIGN.md ablation table (combiner,
// pruning, kernels, random baseline) on a mid-size dataset.
func BenchmarkTableAblations(b *testing.B) {
	sc := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(context.Background(), sc, 4000, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 6 {
			b.Fatal("missing ablation rows")
		}
	}
}

// BenchmarkTableSensitivity: the distribution-sensitivity table
// (independent / correlated / anticorrelated / clustered × methods).
func BenchmarkTableSensitivity(b *testing.B) {
	sc := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sensitivity(context.Background(), sc, 4000, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTablePartitionCount: the partitions-per-node study around the
// paper's 2× rule.
func BenchmarkTablePartitionCount(b *testing.B) {
	sc := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PartitionCount(context.Background(), sc, 4000, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEq5Optimality isolates the metric itself (Eq. 5) at scale.
func BenchmarkEq5Optimality(b *testing.B) {
	data := qws.Dataset(2012, benchLargeN, 6)
	res, err := Compute(context.Background(), data, Options{Method: Angle, Nodes: benchNodes})
	if err != nil {
		b.Fatal(err)
	}
	local := make(map[int]Set, len(res.LocalSkylines))
	for id, s := range res.LocalSkylines {
		local[id] = s
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		metrics.LocalSkylineOptimality(local, res.Skyline)
	}
}

// BenchmarkSkyline pins the telemetry layer's hot-path cost: the same
// MR-Angle computation with telemetry absent (the library default),
// with a metrics registry attached, and with span tracing on. The off
// variant is the regression gate — it must match the pre-telemetry
// engine, since disabled telemetry is a nil-check per site.
func BenchmarkSkyline(b *testing.B) {
	data := qws.Generate(2012, benchSmallN, 4)
	run := func(b *testing.B, opts driver.Options, ctx context.Context) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sky, _, err := driver.Compute(ctx, data, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(sky) == 0 {
				b.Fatal("empty skyline")
			}
		}
	}
	base := driver.Options{Scheme: partition.Angular, Nodes: benchNodes}
	b.Run("telemetry=off", func(b *testing.B) {
		run(b, base, context.Background())
	})
	b.Run("telemetry=metrics", func(b *testing.B) {
		opts := base
		opts.Metrics = telemetry.NewRegistry()
		run(b, opts, context.Background())
	})
	b.Run("telemetry=metrics+trace", func(b *testing.B) {
		opts := base
		opts.Metrics = telemetry.NewRegistry()
		tr := telemetry.NewTracer()
		run(b, opts, telemetry.WithTracer(context.Background(), tr))
	})
}
