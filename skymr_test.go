package skymr

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/points"
	"repro/internal/skyline"
)

func uniform(seed int64, n, d int) Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(Set, n)
	for i := range s {
		p := make(Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		s[i] = p
	}
	return s
}

func sameMultiset(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, p := range a {
		count[points.Key(p)]++
	}
	for _, p := range b {
		count[points.Key(p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestComputeAllMethodsMatchSequential(t *testing.T) {
	data := uniform(1, 1000, 3)
	want := Skyline(data)
	for _, m := range []Method{Dim, Grid, Angle, Random} {
		res, err := Compute(context.Background(), data, Options{Method: m, Nodes: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !sameMultiset(res.Skyline, want) {
			t.Errorf("%v: %d skyline points, sequential %d", m, len(res.Skyline), len(want))
		}
		if res.Method != m {
			t.Errorf("result method %v, want %v", res.Method, m)
		}
		if res.Timing.Total <= 0 {
			t.Errorf("%v: no timing", m)
		}
		if res.Counters["mr.map.records.in"] == 0 {
			t.Errorf("%v: no counters", m)
		}
	}
}

func TestMethodsAndStrings(t *testing.T) {
	if len(Methods()) != 3 {
		t.Error("Methods() must list the paper's three")
	}
	if Dim.String() != "MR-Dim" || Grid.String() != "MR-Grid" || Angle.String() != "MR-Angle" {
		t.Error("unexpected method names")
	}
	if _, err := Compute(context.Background(), uniform(2, 10, 2), Options{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestKernelsAgree(t *testing.T) {
	data := uniform(3, 600, 4)
	want := Skyline(data)
	for _, k := range []Kernel{BNL, SFS, DC} {
		res, err := Compute(context.Background(), data, Options{Method: Angle, Kernel: k})
		if err != nil {
			t.Fatalf("kernel %d: %v", k, err)
		}
		if !sameMultiset(res.Skyline, want) {
			t.Errorf("kernel %d disagrees", k)
		}
	}
}

func TestResultOptimality(t *testing.T) {
	data := GenerateQWS(4, 2000, 4)
	res, err := Compute(context.Background(), data, Options{Method: Angle})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Optimality()
	if o <= 0 || o > 1 {
		t.Errorf("optimality = %g, want (0, 1]", o)
	}
	if res.LocalSkylineTotal() < len(res.Skyline) {
		t.Errorf("local skyline total %d below global %d", res.LocalSkylineTotal(), len(res.Skyline))
	}
}

func TestGenerateQWS(t *testing.T) {
	data := GenerateQWS(5, 1000, 6)
	if len(data) != 1000 || data.Dim() != 6 {
		t.Fatalf("shape %dx%d", len(data), data.Dim())
	}
	names := QWSAttributeNames(6)
	if len(names) != 6 || names[0] != "ResponseTime" {
		t.Errorf("names = %v", names)
	}
	// Extension path.
	big := GenerateQWS(5, 12000, 3)
	if len(big) != 12000 {
		t.Fatalf("extended len %d", len(big))
	}
}

func TestDominatesExported(t *testing.T) {
	if !Dominates(Point{1, 1}, Point{2, 2}) || Dominates(Point{2, 2}, Point{1, 1}) {
		t.Error("Dominates broken")
	}
}

func TestCSVRoundTripExported(t *testing.T) {
	data := Set{{1, 2}, {3, 4}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, data, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	got, header, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || !sameMultiset(got, data) {
		t.Errorf("round trip: %v %v", header, got)
	}
}

func TestIndexIncremental(t *testing.T) {
	data := uniform(6, 400, 2)
	ix, err := BuildIndex(context.Background(), data, Options{Method: Angle})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(ix.Global(), Skyline(data)) {
		t.Fatal("initial index wrong")
	}
	pid, in, err := ix.Add(Point{0.0001, 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Error("dominating point rejected from skyline")
	}
	if pid < 0 {
		t.Errorf("partition id %d", pid)
	}
	if ls := ix.LocalSkyline(pid); len(ls) == 0 {
		t.Error("local skyline of touched partition empty")
	}
	if ix.Size() == 0 {
		t.Error("index empty")
	}
}

func TestComputeGridPruningVisible(t *testing.T) {
	data := uniform(7, 3000, 2)
	res, err := Compute(context.Background(), data, Options{Method: Grid, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedPartitions == 0 {
		t.Error("expected pruned cells on dense 2-D data")
	}
	off, err := Compute(context.Background(), data, Options{Method: Grid, Nodes: 8, DisableGridPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(res.Skyline, off.Skyline) {
		t.Error("pruning changed the skyline")
	}
}

func TestSpillOption(t *testing.T) {
	data := uniform(8, 500, 3)
	res, err := Compute(context.Background(), data, Options{Method: Angle, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["mr.spill.bytes"] == 0 {
		t.Error("spill requested but no bytes spilled")
	}
	if !sameMultiset(res.Skyline, Skyline(data)) {
		t.Error("spill mode changed result")
	}
}

func TestPublicSequentialMatchesOracle(t *testing.T) {
	data := uniform(9, 700, 5)
	if !sameMultiset(Skyline(data), skyline.Naive(data)) {
		t.Error("Skyline() disagrees with oracle")
	}
}
