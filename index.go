package skymr

import (
	"context"
	"io"

	"repro/internal/driver"
)

// Index maintains a skyline incrementally as new services are published
// (paper §II): adding a service touches only its partition's local
// skyline, then re-merges the (small) union of local skylines — no full
// recompute over the registry. Safe for concurrent use.
type Index struct {
	ix *driver.Index
}

// BuildIndex computes the initial skyline of data and returns an Index
// ready for incremental additions. The partitioner is fitted to the
// initial data; later points outside its bounds remain correct (they are
// clamped into boundary partitions).
func BuildIndex(ctx context.Context, data Set, opts Options) (*Index, error) {
	ix, err := driver.BuildIndex(ctx, data, driver.Options{
		Scheme:     opts.Method.scheme(),
		Nodes:      opts.Nodes,
		Partitions: opts.Partitions,
		Workers:    opts.Workers,
		Kernel:     opts.Kernel.algorithm(),
	})
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Add registers a new service. It returns the partition the service
// landed in and whether it entered the global skyline.
func (x *Index) Add(p Point) (partitionID int, inGlobal bool, err error) {
	return x.ix.Add(p)
}

// StartPipeline switches the index into batched publish mode: concurrent
// Adds are coalesced by a single worker into group commits — one epoch
// per batch — while each Add still blocks until its batch is installed
// (an acknowledged publish is always visible). Non-positive sizes select
// the defaults.
func (x *Index) StartPipeline(queue, maxBatch int) error { return x.ix.StartPipeline(queue, maxBatch) }

// Close drains and stops the publish pipeline, if one is running. Every
// accepted publish is folded and acknowledged before Close returns;
// later Adds fall back to the synchronous path.
func (x *Index) Close() { x.ix.Close() }

// Global returns a copy of the current global skyline.
func (x *Index) Global() Set { return x.ix.Global() }

// Epoch returns the index's current version number; it advances by one
// per installed publish batch.
func (x *Index) Epoch() uint64 { return x.ix.Epoch() }

// LocalSkyline returns a copy of one partition's local skyline.
func (x *Index) LocalSkyline(id int) Set { return x.ix.LocalSkyline(id) }

// Size returns the total number of points retained across local skylines.
func (x *Index) Size() int { return x.ix.Size() }

// Save snapshots the index (partition-tagged local skylines in a
// checksummed container) so a service can restart without recomputing the
// skyline from the full catalogue.
func (x *Index) Save(w io.Writer) error { return x.ix.Save(w) }

// LoadIndex restores an index saved with Save. opts selects the
// partitioner for future additions (typically the options the index was
// built with).
func LoadIndex(ctx context.Context, r io.Reader, opts Options) (*Index, error) {
	ix, err := driver.LoadIndex(ctx, r, driver.Options{
		Scheme:     opts.Method.scheme(),
		Nodes:      opts.Nodes,
		Partitions: opts.Partitions,
		Workers:    opts.Workers,
		Kernel:     opts.Kernel.algorithm(),
	})
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}
