package skymr

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end-to-end so the
// documentation programs can never rot. Skipped with -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples found, want >= 3", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if strings.TrimSpace(string(out)) == "" {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
