package skymr

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBinariesEndToEnd builds the actual skymaster/skyworker binaries and
// runs a distributed skyline computation over real TCP between separate
// OS processes — the closest thing to the paper's cluster deployment that
// fits in a test.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary integration test skipped in -short mode")
	}
	dir := t.TempDir()

	build := func(name string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	masterBin := build("skymaster")
	workerBin := build("skyworker")

	// Input data: 2,000 QWS-like services, with the sequential skyline as
	// the oracle.
	data := GenerateQWS(2025, 2000, 4)
	want := Skyline(data)
	input := filepath.Join(dir, "services.csv")
	f, err := os.Create(input)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(f, data, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var masterOut bytes.Buffer
	master := exec.CommandContext(ctx, masterBin,
		"-addr", addr, "-method", "angle", "-partitions", "8",
		"-reducers", "2", "-min-workers", "2", input)
	master.Stdout = &masterOut
	master.Stderr = os.Stderr
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the master to listen before starting workers.
	waitForListen(t, addr, 20*time.Second)

	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		w := exec.CommandContext(ctx, workerBin, "-master", addr, "-id", fmt.Sprintf("itw-%d", i))
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			_ = w.Process.Kill()
			_ = w.Wait()
		}
	}()

	if err := master.Wait(); err != nil {
		t.Fatalf("skymaster exited with error: %v", err)
	}
	got, _, err := ReadCSV(strings.NewReader(masterOut.String()), false)
	if err != nil {
		t.Fatalf("parsing master output: %v\noutput:\n%s", err, masterOut.String())
	}
	if !sameMultiset(got, want) {
		t.Errorf("distributed binaries produced %d skyline points, oracle %d", len(got), len(want))
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitForListen(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("master never listened on %s", addr)
}
