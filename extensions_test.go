package skymr

import (
	"context"
	"strings"
	"testing"
)

func TestComputeSkybandPublic(t *testing.T) {
	data := uniform(71, 800, 3)
	for _, k := range []int{1, 3} {
		want, err := Skyband(data, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeSkyband(context.Background(), data, k, Options{Method: Angle})
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("k=%d: MR skyband %d points, sequential %d", k, len(got), len(want))
		}
	}
	if _, err := ComputeSkyband(context.Background(), data, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ComputeSkyband(context.Background(), data, 2, Options{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSkybandContainsSkyline(t *testing.T) {
	data := uniform(72, 500, 4)
	sky := Skyline(data)
	band, err := Skyband(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sky {
		if !band.Contains(p) {
			t.Errorf("skyline point %v missing from 2-skyband", p)
		}
	}
}

func TestSkylineBoundedPublic(t *testing.T) {
	data := uniform(73, 700, 3)
	want := Skyline(data)
	for _, w := range []int{1, 5, 1000} {
		got, err := SkylineBounded(data, w)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("window %d: %d points, want %d", w, len(got), len(want))
		}
	}
	if _, err := SkylineBounded(data, 0); err == nil {
		t.Error("window 0 accepted")
	}
}

func TestRepresentativeSkylinePublic(t *testing.T) {
	data := uniform(74, 2000, 2)
	sky := Skyline(data)
	if len(sky) < 4 {
		t.Skip("skyline too small")
	}
	reps := RepresentativeSkyline(sky, 3)
	if len(reps) != 3 {
		t.Fatalf("got %d representatives", len(reps))
	}
	for _, p := range reps {
		if !sky.Contains(p) {
			t.Errorf("representative %v not in skyline", p)
		}
	}
}

func TestLoadQWSPublic(t *testing.T) {
	raw := "302.75,89,7.1,90,73,78,80,187.75,32,SvcA,addr\n482,85,16,95,73,100,84,1,2,SvcB,addr\n"
	data, names, err := LoadQWS(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 || data.Dim() != 9 || names[1] != "SvcB" {
		t.Errorf("data=%dx%d names=%v", len(data), data.Dim(), names)
	}
	// Loaded data must flow through the pipeline unchanged.
	res, err := Compute(context.Background(), data, Options{Method: Grid, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) == 0 {
		t.Error("no skyline from loaded QWS data")
	}
}

func TestHierarchicalMergePublic(t *testing.T) {
	data := uniform(75, 1200, 3)
	flat, err := Compute(context.Background(), data, Options{Method: Angle, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Compute(context.Background(), data, Options{
		Method: Angle, Nodes: 8, HierarchicalMerge: true, MergeFanIn: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(flat.Skyline, hier.Skyline) {
		t.Error("hierarchical merge changed the skyline")
	}
}

func TestWindowedSkylinePublic(t *testing.T) {
	ws, err := NewWindowedSkyline(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWindowedSkyline(0); err == nil {
		t.Error("zero capacity accepted")
	}
	for i := 0; i < 20; i++ {
		if _, err := ws.Observe(Point{float64(i % 7), float64((i * 3) % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if ws.Len() != 5 {
		t.Errorf("Len = %d, want 5", ws.Len())
	}
	// The window skyline must be the batch skyline of a 5-point suffix —
	// cross-check via a fresh replay.
	sky := ws.Skyline()
	if len(sky) == 0 || len(sky) > 5 {
		t.Errorf("skyline size %d", len(sky))
	}
}

func TestTopKDominatingPublic(t *testing.T) {
	data := Set{{0, 0}, {1, 1}, {9, 9}}
	got := TopKDominating(data, 1)
	if len(got) != 1 || !got[0].Equal(Point{0, 0}) {
		t.Errorf("TopKDominating = %v", got)
	}
}
